"""Multi-level hierarchies and transitive query processing."""

from collections import Counter

import pytest

from repro.core.deep import (
    DeepQuery,
    deep_bfs,
    deep_dfs,
    deep_reference_values,
)
from repro.core.measure import CostMeter
from repro.errors import QueryError, WorkloadError
from repro.workload.deepgen import DeepParams, build_deep_database


@pytest.fixture(scope="module")
def deep_db():
    params = DeepParams(
        num_roots=250, depth=3, size_unit=4, use_factor=4, buffer_pages=12, seed=9
    )
    return params, build_deep_database(params)


class TestDeepParams:
    def test_cardinalities_follow_recursion(self):
        params = DeepParams(num_roots=1000, size_unit=5, use_factor=5)
        assert params.level_cardinality(0) == 1000
        assert params.level_cardinality(1) == 1000
        params = DeepParams(num_roots=1000, size_unit=6, use_factor=3)
        assert params.level_cardinality(1) == 2000

    def test_dying_hierarchy_rejected(self):
        with pytest.raises(WorkloadError):
            DeepParams(num_roots=20, depth=4, size_unit=2, use_factor=8).validate()

    def test_replace_validates(self):
        with pytest.raises(WorkloadError):
            DeepParams().replace(depth=0)


class TestStructure:
    def test_level_count(self, deep_db):
        params, db = deep_db
        assert db.depth == 3
        assert len(db.levels) == 4

    def test_leaf_level_has_no_children(self, deep_db):
        params, db = deep_db
        for record in db.levels[-1].range_scan(0, 10):
            assert db.children_of(record) == []

    def test_inner_levels_reference_next_level(self, deep_db):
        params, db = deep_db
        for level in range(db.depth):
            record = db.levels[level].lookup_one(0)
            for oid in db.children_of(record):
                assert oid.rel == level + 1
                assert db.levels[level + 1].contains(oid.key)


class TestQueries:
    def test_query_validation(self):
        with pytest.raises(QueryError):
            DeepQuery(5, 4, 1)
        with pytest.raises(QueryError):
            DeepQuery(0, 1, 0)

    def test_depth_bounded_by_database(self, deep_db):
        params, db = deep_db
        with pytest.raises(QueryError):
            deep_dfs(db, DeepQuery(0, 1, 4))

    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_dfs_matches_reference(self, deep_db, depth):
        params, db = deep_db
        query = DeepQuery(3, 9, depth, "ret2")
        assert Counter(deep_dfs(db, query)) == Counter(
            deep_reference_values(db, query)
        )

    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_bfs_matches_reference(self, deep_db, depth):
        params, db = deep_db
        query = DeepQuery(3, 9, depth, "ret3")
        assert Counter(deep_bfs(db, query)) == Counter(
            deep_reference_values(db, query)
        )

    def test_bfs_dedup_returns_distinct_leaf_values(self, deep_db):
        params, db = deep_db
        query = DeepQuery(0, 30, 3, "ret1")
        dedup = deep_bfs(db, query, dedup=True)
        full = deep_bfs(db, query, dedup=False)
        assert set(dedup) == set(full)
        assert len(dedup) <= len(full)


class TestCosts:
    def test_dfs_explodes_with_depth(self, deep_db):
        params, db = deep_db
        costs = []
        for depth in (1, 2, 3):
            db.start_measurement()
            meter = CostMeter(db.disk)
            deep_dfs(db, DeepQuery(0, 9, depth), meter)
            costs.append(meter.total_cost)
        assert costs[0] < costs[1] < costs[2]

    def test_bfs_beats_dfs_at_depth(self, deep_db):
        params, db = deep_db
        query = DeepQuery(0, 40, 3)
        db.start_measurement()
        dfs_meter = CostMeter(db.disk)
        deep_dfs(db, query, dfs_meter)
        db.start_measurement()
        bfs_meter = CostMeter(db.disk)
        deep_bfs(db, query, bfs_meter)
        assert bfs_meter.total_cost < dfs_meter.total_cost

    def test_nodup_never_worse_than_bfs_by_much(self, deep_db):
        params, db = deep_db
        query = DeepQuery(0, 40, 3)
        db.start_measurement()
        bfs_meter = CostMeter(db.disk)
        deep_bfs(db, query, bfs_meter)
        db.start_measurement()
        nodup_meter = CostMeter(db.disk)
        deep_bfs(db, query, nodup_meter, dedup=True)
        assert nodup_meter.total_cost <= bfs_meter.total_cost + 2
