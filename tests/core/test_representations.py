"""The representation matrix (Figure 1) and Figure 2's strategy mapping."""

import pytest

from repro.core.oid import Oid
from repro.core.representations import (
    CachedRep,
    OidMembers,
    PrimaryRep,
    ProceduralMembers,
    ValueMembers,
    is_valid_cell,
    is_valid_point,
    matrix_summary,
    primary_of,
    strategies_for,
)
from repro.errors import RepresentationError


class TestMatrixCells:
    def test_procedural_column_fully_valid(self):
        for cached in CachedRep:
            assert is_valid_cell(PrimaryRep.PROCEDURAL, cached)

    def test_oid_caching_oids_is_shaded(self):
        assert not is_valid_cell(PrimaryRep.OID, CachedRep.OIDS)
        assert is_valid_cell(PrimaryRep.OID, CachedRep.NONE)
        assert is_valid_cell(PrimaryRep.OID, CachedRep.VALUES)

    def test_value_based_caching_is_shaded(self):
        assert is_valid_cell(PrimaryRep.VALUE, CachedRep.NONE)
        assert not is_valid_cell(PrimaryRep.VALUE, CachedRep.OIDS)
        assert not is_valid_cell(PrimaryRep.VALUE, CachedRep.VALUES)

    def test_summary_counts(self):
        cells = matrix_summary()
        assert len(cells) == 9
        assert sum(1 for _, _, valid in cells if valid) == 6


class TestClusteringAxis:
    def test_clustering_only_for_oid_primary(self):
        assert is_valid_point(PrimaryRep.OID, CachedRep.NONE, clustered=True)
        assert not is_valid_point(PrimaryRep.PROCEDURAL, CachedRep.NONE, clustered=True)
        assert not is_valid_point(PrimaryRep.VALUE, CachedRep.NONE, clustered=True)

    def test_caching_plus_clustering_rejected(self):
        # Section 3.4: "it does not make sense to combine the two".
        assert not is_valid_point(PrimaryRep.OID, CachedRep.VALUES, clustered=True)


class TestStrategyMapping:
    def test_figure_2_mapping(self):
        assert strategies_for(CachedRep.NONE, clustered=False) == [
            "DFS",
            "BFS",
            "BFSNODUP",
        ]
        assert strategies_for(CachedRep.VALUES, clustered=False) == [
            "DFSCACHE",
            "SMART",
        ]
        assert strategies_for(CachedRep.NONE, clustered=True) == ["DFSCLUST"]

    def test_invalid_point_raises(self):
        with pytest.raises(RepresentationError):
            strategies_for(CachedRep.VALUES, clustered=True)

    def test_every_mapped_strategy_is_registered(self):
        from repro.core.strategies import REGISTRY

        for cached, clustered in [
            (CachedRep.NONE, False),
            (CachedRep.VALUES, False),
            (CachedRep.NONE, True),
        ]:
            for name in strategies_for(cached, clustered):
                assert name in REGISTRY


class TestMemberDescriptors:
    def test_primary_of(self):
        proc = ProceduralMembers("person", lambda r: True, "age >= 60")
        oids = OidMembers([Oid(1, 2)])
        values = ValueMembers([("John", 62)])
        assert primary_of(proc) is PrimaryRep.PROCEDURAL
        assert primary_of(oids) is PrimaryRep.OID
        assert primary_of(values) is PrimaryRep.VALUE

    def test_primary_of_rejects_junk(self):
        with pytest.raises(RepresentationError):
            primary_of("nope")

    def test_oid_members_normalises_to_tuple(self):
        members = OidMembers([Oid(1, 2), Oid(1, 3)])
        assert members.oids == (Oid(1, 2), Oid(1, 3))

    def test_value_members_copies_tuples(self):
        members = ValueMembers([["John", 62]])
        assert members.values == (("John", 62),)
