"""Procedural primary representation and its cached variants."""

from collections import Counter

import pytest

from repro.core.measure import CostMeter
from repro.core.queries import RetrieveQuery, UpdateQuery
from repro.core.strategies import make_strategy, procedure_hashkey
from repro.errors import QueryError, WorkloadError
from repro.workload.generator import build_database
from repro.workload.params import WorkloadParams

PROC_STRATEGIES = ("PROC-EXEC", "PROC-CACHE-OIDS", "PROC-CACHE-VALUES")


@pytest.fixture(scope="module")
def proc_db():
    params = WorkloadParams(
        num_parents=200,
        use_factor=5,
        overlap_factor=1,
        num_top=10,
        size_cache=50,
        buffer_pages=12,
        seed=7,
    )
    return params, build_database(params, cache=True, procedural=True)


def reference(db, query):
    out = []
    attr_index = db.child_schema.field_index(query.attr)
    for parent in db.parents_in_range(query.lo, query.hi):
        for oid in db.children_of(parent):
            out.append(db.fetch_child(oid.rel - 1, oid.key)[attr_index])
    return out


class TestGeneration:
    def test_procedures_present_for_every_parent(self, proc_db):
        params, db = proc_db
        assert set(db.procedures) == set(range(params.num_parents))

    def test_procedure_evaluates_to_the_unit(self, proc_db):
        params, db = proc_db
        ret2 = db.child_schema.field_index("ret2")
        for parent_key in range(0, params.num_parents, 23):
            parent = db.fetch_parent(parent_key)
            rel_index, lo, hi = db.procedure_for(parent_key)
            by_query = {
                child[0]
                for child in db.child_rel(rel_index).scan()
                if lo <= child[ret2] <= hi
            }
            by_oids = {oid.key for oid in db.children_of(parent)}
            assert by_query == by_oids

    def test_requires_overlap_one(self):
        params = WorkloadParams(
            num_parents=100, use_factor=1, overlap_factor=2, size_cache=10
        )
        with pytest.raises(WorkloadError):
            build_database(params, procedural=True)

    def test_plain_database_has_no_procedures(self, tiny_db_plain):
        with pytest.raises(WorkloadError):
            tiny_db_plain.procedure_for(0)


class TestCorrectness:
    @pytest.mark.parametrize("name", PROC_STRATEGIES)
    @pytest.mark.parametrize("lo,hi", [(0, 0), (13, 37), (0, 199)])
    def test_matches_oid_navigation(self, proc_db, name, lo, hi):
        params, db = proc_db
        query = RetrieveQuery(lo, hi, "ret3")
        db.reset_cache()
        got = make_strategy(name).retrieve(db, query)
        assert Counter(got) == Counter(reference(db, query))

    @pytest.mark.parametrize("name", ("PROC-CACHE-OIDS", "PROC-CACHE-VALUES"))
    def test_cached_run_agrees_with_cold_run(self, proc_db, name):
        params, db = proc_db
        query = RetrieveQuery(0, 29, "ret1")
        strategy = make_strategy(name)
        db.reset_cache()
        cold = Counter(strategy.retrieve(db, query))
        warm = Counter(strategy.retrieve(db, query))
        assert cold == warm

    def test_update_visible_through_value_cache(self, proc_db):
        params, db = proc_db
        query = RetrieveQuery(0, 9, "ret1")
        strategy = make_strategy("PROC-CACHE-VALUES")
        db.reset_cache()
        strategy.retrieve(db, query)  # populate
        rel_index, keys = db.unit_ref_of(db.fetch_parent(3))
        strategy.update(db, UpdateQuery(((rel_index, keys[0]),), 987654321))
        got = strategy.retrieve(db, query)
        assert 987654321 in got


class TestPrerequisites:
    def test_proc_strategies_need_procedures(self, tiny_db):
        for name in PROC_STRATEGIES:
            with pytest.raises(QueryError):
                make_strategy(name).retrieve(tiny_db, RetrieveQuery(0, 5, "ret1"))

    def test_cached_variants_need_cache(self, tiny_params):
        db = build_database(tiny_params, procedural=True)
        with pytest.raises(QueryError):
            make_strategy("PROC-CACHE-VALUES").retrieve(
                db, RetrieveQuery(0, 5, "ret1")
            )
        # PROC-EXEC needs no cache.
        make_strategy("PROC-EXEC").retrieve(db, RetrieveQuery(0, 5, "ret1"))


class TestCosts:
    def test_exec_scans_child_relation(self, proc_db):
        params, db = proc_db
        db.start_measurement()
        meter = CostMeter(db.disk)
        make_strategy("PROC-EXEC").retrieve(db, RetrieveQuery(0, 4, "ret1"), meter)
        # The batched evaluation reads at least the child relation once.
        assert meter.child_cost >= db.child_rels[0].num_leaf_pages

    def test_value_cache_hits_avoid_the_scan(self, proc_db):
        params, db = proc_db
        query = RetrieveQuery(10, 14, "ret1")
        strategy = make_strategy("PROC-CACHE-VALUES")
        db.reset_cache()
        db.start_measurement()
        strategy.retrieve(db, query)  # cold: pays the scan
        db.start_measurement()
        meter = CostMeter(db.disk)
        strategy.retrieve(db, query, meter)
        assert meter.child_cost < db.child_rels[0].num_leaf_pages / 2

    def test_hashkey_is_a_function_of_the_query(self):
        assert procedure_hashkey((0, 10, 14)) == procedure_hashkey((0, 10, 14))
        assert procedure_hashkey((0, 10, 14)) != procedure_hashkey((0, 10, 15))
        assert procedure_hashkey((0, 10, 14)) != procedure_hashkey((1, 10, 14))
