"""Cost meter: phase attribution."""

import pytest

from repro.core.measure import CHILD_PHASE, CostMeter, NullMeter, PARENT_PHASE
from repro.storage.disk import DiskManager


@pytest.fixture
def disk():
    return DiskManager(256)


def charge(disk, reads=0, writes=0):
    fid = disk.create_file()
    page = disk.allocate_page(fid)
    for _ in range(reads):
        disk.read_page(page.page_id)
    for _ in range(writes):
        disk.write_page(page)


class TestPhases:
    def test_attribution(self, disk):
        meter = CostMeter(disk)
        with meter.phase(PARENT_PHASE):
            charge(disk, reads=3)
        with meter.phase(CHILD_PHASE):
            charge(disk, reads=2, writes=1)
        assert meter.par_cost == 3
        assert meter.child_cost == 3
        assert meter.total_cost == 6
        assert meter.io(CHILD_PHASE).writes == 1

    def test_phases_accumulate(self, disk):
        meter = CostMeter(disk)
        for _ in range(3):
            with meter.phase("x"):
                charge(disk, reads=1)
        assert meter.cost("x") == 3

    def test_unentered_phase_is_zero(self, disk):
        meter = CostMeter(disk)
        assert meter.cost("never") == 0
        assert meter.update_cost == 0

    def test_nesting_rejected(self, disk):
        meter = CostMeter(disk)
        with pytest.raises(RuntimeError):
            with meter.phase("a"):
                with meter.phase("b"):
                    pass

    def test_phase_closed_after_exception(self, disk):
        meter = CostMeter(disk)
        with pytest.raises(ValueError):
            with meter.phase("a"):
                raise ValueError("boom")
        with meter.phase("b"):  # must not complain about an active phase
            pass

    def test_merge(self, disk):
        a = CostMeter(disk)
        with a.phase("x"):
            charge(disk, reads=1)
        b = CostMeter(disk)
        with b.phase("x"):
            charge(disk, reads=2)
        a.merge(b)
        assert a.cost("x") == 3

    def test_reset(self, disk):
        meter = CostMeter(disk)
        with meter.phase("x"):
            charge(disk, reads=1)
        meter.reset()
        assert meter.total_cost == 0


class TestNullMeter:
    def test_accepts_phases_without_effect(self):
        meter = NullMeter()
        with meter.phase("anything"):
            pass
        assert meter.total_cost == 0
