"""The workload advisor."""

import pytest

from repro.advisor import (
    DEFAULT_CANDIDATES,
    Recommendation,
    WorkloadSketch,
    recommend,
)
from repro.errors import WorkloadError


class TestSketchValidation:
    def test_defaults_valid(self):
        WorkloadSketch().validate()

    @pytest.mark.parametrize(
        "changes",
        [
            {"use_factor": 0},
            {"overlap_factor": 0},
            {"num_top_fraction": 0},
            {"num_top_fraction": 1.5},
            {"pr_update": 1.0},
        ],
    )
    def test_bad_sketches_rejected(self, changes):
        import dataclasses

        sketch = dataclasses.replace(WorkloadSketch(), **changes)
        with pytest.raises(WorkloadError):
            sketch.validate()

    def test_share_factor(self):
        assert WorkloadSketch(use_factor=3, overlap_factor=2).share_factor == 6


class TestRecommendations:
    def test_private_subobjects_favour_clustering(self):
        sketch = WorkloadSketch(use_factor=1, num_top_fraction=0.005)
        rec = recommend(sketch, scale=0.05, num_retrieves=15)
        assert rec.winner == "DFSCLUST"

    def test_full_scans_favour_bfs(self):
        sketch = WorkloadSketch(use_factor=5, num_top_fraction=0.5)
        rec = recommend(sketch, scale=0.05, num_retrieves=8)
        assert rec.winner == "BFS"

    def test_ranking_sorted_and_complete(self):
        rec = recommend(WorkloadSketch(), scale=0.05, num_retrieves=10)
        names = [name for name, _ in rec.ranking()]
        assert set(names) == set(DEFAULT_CANDIDATES)
        costs = [cost for _, cost in rec.ranking()]
        assert costs == sorted(costs)

    def test_custom_candidates(self):
        rec = recommend(
            WorkloadSketch(), candidates=("DFS", "BFS"), scale=0.05,
            num_retrieves=10,
        )
        assert set(rec.costs) == {"DFS", "BFS"}

    def test_empty_candidates_rejected(self):
        with pytest.raises(WorkloadError):
            recommend(WorkloadSketch(), candidates=())

    def test_str_mentions_winner(self):
        rec = recommend(WorkloadSketch(), scale=0.05, num_retrieves=8)
        assert rec.winner in str(rec)

    def test_deterministic(self):
        a = recommend(WorkloadSketch(), scale=0.05, num_retrieves=8)
        b = recommend(WorkloadSketch(), scale=0.05, num_retrieves=8)
        assert a.costs == b.costs
