"""Traced cost attribution: the self-check and the Figure 5 split.

The point of the observability layer: per-query cost attribution derived
purely from traced physical page accesses must reproduce the numbers the
driver reports (exactly) and the paper's analytic shapes (Figure 5's
ParCost/ChildCost split and its crossing).
"""

import pytest

from repro.core.strategies.base import make_strategy
from repro.experiments import fig5
from repro.experiments.pool import SweepPoint, run_sweep
from repro.obs import MetricsRegistry, Tracer, validate_report
from repro.workload.driver import run_sequence
from repro.workload.generator import build_database
from repro.workload.queries import generate_sequence

ALL_STRATEGIES = (
    "DFS",
    "BFS",
    "BFSNODUP",
    "DFSCACHE",
    "DFSCACHE-INSIDE",
    "DFSCLUST",
    "SMART",
    "OPT",
    "PROC-EXEC",
    "PROC-CACHE-OIDS",
    "PROC-CACHE-VALUES",
)


def _database_for(params, name):
    strategy = make_strategy(name)
    procedural = name.startswith("PROC")
    db = build_database(
        params,
        clustering=strategy.uses_clustering,
        cache=procedural or (strategy.uses_cache and name != "DFSCACHE-INSIDE"),
        procedural=procedural,
    )
    if name == "DFSCACHE-INSIDE":
        db.enable_inside_cache(
            params.size_cache,
            unit_bytes_hint=params.size_unit * params.child_bytes,
        )
    return db, strategy


class TestSelfValidation:
    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_traced_totals_equal_reported_costs(self, tiny_params, name):
        """Every strategy's traced event stream accounts for every page.

        run_sequence raises TraceValidationError itself on any mismatch;
        asserting validate_report() == [] here keeps the failure message
        explicit and pins the contract the driver relies on.
        """
        db, strategy = _database_for(tiny_params, name)
        sequence = generate_sequence(tiny_params, db)
        tracer = Tracer(registry=MetricsRegistry(), keep_events=False)
        report = run_sequence(db, strategy, sequence, tracer=tracer)
        assert report.traced is not None
        assert validate_report(report, report.traced) == []
        measured = report.traced["measured"]
        assert measured["retrieve_io"] + measured["update_io"] == report.total_io

    def test_mixed_sequence_with_updates_validates(self, tiny_params):
        params = tiny_params.replace(pr_update=0.5)
        db, strategy = _database_for(params, "DFSCACHE")
        sequence = generate_sequence(params, db)
        tracer = Tracer(registry=MetricsRegistry(), keep_events=False)
        report = run_sequence(db, strategy, sequence, tracer=tracer)
        assert report.num_updates > 0
        assert validate_report(report, report.traced) == []
        assert report.traced["measured"]["update_io"] == report.update_io

    def test_every_event_lands_in_a_known_kind(self, tiny_params):
        db, strategy = _database_for(tiny_params, "SMART")
        sequence = generate_sequence(tiny_params, db)
        tracer = Tracer(registry=MetricsRegistry(), keep_events=False)
        report = run_sequence(db, strategy, sequence, tracer=tracer)
        by_kind = report.traced["by_kind"]
        assert "other" not in by_kind
        assert sum(by_kind.values()) == report.traced["events"]


class TestFig5FromTraces:
    """Figure 5's shape rebuilt from measured events alone (scale 0.2)."""

    @pytest.fixture(scope="class")
    def traced_rows(self):
        base = fig5.default_params(scale=0.2)
        num_top = max(1, round(base.num_parents * fig5.NUM_TOP_FRACTION))
        use_factors = (1, 4, 16)
        cells = [
            base.replace(use_factor=use_factor, num_top=num_top)
            for use_factor in use_factors
        ]
        points = [
            SweepPoint(
                params=cell,
                strategy=name,
                num_retrieves=4,
                cold_retrieves=True,
                traced=True,
            )
            for cell in cells
            for name in ("DFSCLUST", "BFS")
        ]
        reports = run_sweep(points)
        rows = []
        for index, cell in enumerate(cells):
            clust, bfs = reports[2 * index], reports[2 * index + 1]
            # Build the row purely from the traced event aggregates —
            # never from the driver's own cost accounting.
            row = {"share_factor": cell.share_factor}
            for label, report in (("clust", clust), ("bfs", bfs)):
                measured = report.traced["measured"]
                retrieves = report.num_retrieves
                row[label] = {
                    "par": measured["par_cost"] / retrieves,
                    "child": measured["child_cost"] / retrieves,
                    "total": (measured["retrieve_io"] + measured["update_io"])
                    / retrieves,
                }
            rows.append(row)
        return rows

    def test_clust_parcost_rises_as_share_factor_falls(self, traced_rows):
        par = [row["clust"]["par"] for row in traced_rows]
        assert par[0] == max(par)
        assert par[0] > 1.5 * par[-1]

    def test_clust_childcost_zero_at_share_factor_one(self, traced_rows):
        assert traced_rows[0]["share_factor"] == 1
        assert traced_rows[0]["clust"]["child"] == 0
        assert all(row["clust"]["child"] > 0 for row in traced_rows[1:])

    def test_bfs_childcost_falls_with_share_factor(self, traced_rows):
        child = [row["bfs"]["child"] for row in traced_rows]
        assert child[0] > child[-1]

    def test_total_cost_curves_cross(self, traced_rows):
        """DFSCLUST wins at ShareFactor 1; BFS wins once sharing is high."""
        first, last = traced_rows[0], traced_rows[-1]
        assert first["clust"]["total"] < first["bfs"]["total"]
        assert last["bfs"]["total"] < last["clust"]["total"]
