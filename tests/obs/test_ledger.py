"""The persistent run ledger: append-only JSONL, corrupt-line tolerance."""

import json
import os

from repro.obs.ledger import (
    LEDGER_SCHEMA,
    RunLedger,
    git_revision,
    micro_record,
    report_record,
)


def entry(name="fig3", seconds=1.5, executed=4):
    return {
        "name": name,
        "seconds": seconds,
        "points": 6,
        "cache_hits": 2,
        "executed": executed,
        "buffer": {"hits": 10, "misses": 5},
    }


class TestRunLedger:
    def test_append_stamps_defaults_and_roundtrips(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "ledger.jsonl"))
        ledger.append({"kind": "report", "scale": 0.1})
        (record,) = ledger.read()
        assert record["schema"] == LEDGER_SCHEMA
        assert record["kind"] == "report"
        assert "ts" in record and "git" in record

    def test_append_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "ledger.jsonl"
        RunLedger(str(path)).append({"kind": "micro"})
        assert path.exists()

    def test_records_keep_file_order(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "ledger.jsonl"))
        for index in range(3):
            ledger.append({"kind": "report", "index": index})
        assert [r["index"] for r in ledger.read()] == [0, 1, 2]

    def test_corrupt_lines_are_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(str(path))
        ledger.append({"kind": "report", "index": 0})
        with open(path, "a") as handle:
            handle.write("{torn write, no closing\n")
            handle.write("[1, 2, 3]\n")  # valid JSON, not an object
            handle.write("\n")
        ledger.append({"kind": "report", "index": 1})
        assert [r["index"] for r in ledger.read()] == [0, 1]

    def test_kind_filter_and_last(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "ledger.jsonl"))
        ledger.append({"kind": "report", "index": 0})
        ledger.append({"kind": "micro", "index": 1})
        ledger.append({"kind": "report", "index": 2})
        assert [r["index"] for r in ledger.read("report")] == [0, 2]
        assert [r["index"] for r in ledger.last(1, "report")] == [2]

    def test_missing_file_reads_empty(self, tmp_path):
        assert RunLedger(str(tmp_path / "absent.jsonl")).read() == []


class TestGitRevision:
    def test_repo_revision_is_short_hex(self):
        rev = git_revision(os.path.dirname(os.path.abspath(__file__)))
        assert rev != "unknown"
        assert len(rev) == 12
        int(rev, 16)  # parses as hex

    def test_outside_a_repo_degrades_to_unknown(self, tmp_path):
        assert git_revision(str(tmp_path)) == "unknown"


class TestRecordBuilders:
    def test_report_record_keeps_trend_fields_only(self):
        record = report_record(
            scale=0.1,
            jobs=2,
            total_seconds=3.14159,
            experiments=[entry("fig3"), entry("fig4", seconds=2.0)],
            faults={"retries": 1, "quarantined": ["fig3/p1"]},
            db={"entries": 4},
            point_cache={"hits": 2},
            fingerprint="abc123",
        )
        assert record["kind"] == "report"
        assert record["total_seconds"] == 3.142
        names = [e["name"] for e in record["experiments"]]
        assert names == ["fig3", "fig4"]
        # buffer counters are summed across experiments, not kept per-exp
        assert record["buffer"] == {"hits": 20, "misses": 10}
        assert "buffer" not in record["experiments"][0]
        # quarantine is split out of the fault counters
        assert record["quarantined"] == ["fig3/p1"]
        assert "quarantined" not in record["faults"]
        assert "spans" not in record and "fault_config" not in record

    def test_report_record_optional_sections(self):
        record = report_record(
            scale=0.1,
            jobs=1,
            total_seconds=1.0,
            experiments=[entry()],
            faults={},
            db={},
            point_cache={},
            fingerprint="abc",
            spans={"point.execute": {"count": 4}},
            fault_config={"seed": 7},
        )
        assert record["spans"]["point.execute"]["count"] == 4
        assert record["fault_config"] == {"seed": 7}

    def test_records_are_json_serialisable_one_line(self):
        record = micro_record({"heap_scan": {"ns_per_op": 9}}, "abc")
        line = json.dumps(record, sort_keys=True)
        assert "\n" not in line
        assert record["kind"] == "micro"
        assert record["schema"] == LEDGER_SCHEMA
