"""The metrics registry: counters, gauges, histograms, snapshots."""

import json

from repro.obs.registry import Histogram, MetricsRegistry, registry, reset_registry


class TestCounters:
    def test_increment_and_read(self):
        reg = MetricsRegistry()
        reg.inc("io.pages", kind="parent")
        reg.inc("io.pages", 4, kind="parent")
        reg.inc("io.pages", kind="child")
        assert reg.counter("io.pages", kind="parent") == 5
        assert reg.counter("io.pages", kind="child") == 1
        assert reg.counter("io.pages", kind="cluster") == 0

    def test_tag_order_is_irrelevant(self):
        reg = MetricsRegistry()
        reg.inc("io.pages", op="read", kind="child")
        reg.inc("io.pages", kind="child", op="read")
        assert reg.counter("io.pages", op="read", kind="child") == 2

    def test_sum_counters_filters_by_tag_subset(self):
        reg = MetricsRegistry()
        reg.inc("io.pages", 3, op="read", kind="parent")
        reg.inc("io.pages", 5, op="read", kind="child")
        reg.inc("io.pages", 7, op="write", kind="child")
        reg.inc("other", 100, op="read")
        assert reg.sum_counters("io.pages") == 15
        assert reg.sum_counters("io.pages", op="read") == 8
        assert reg.sum_counters("io.pages", kind="child") == 12

    def test_counters_matching_ignores_tags(self):
        reg = MetricsRegistry()
        reg.inc("a", kind="x")
        reg.inc("a", kind="y")
        reg.inc("b")
        assert len(list(reg.counters_matching("a"))) == 2


class TestGauges:
    def test_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("pool.resident", 10)
        reg.set_gauge("pool.resident", 7)
        assert reg.gauge("pool.resident") == 7
        assert reg.gauge("missing") is None


class TestHistogram:
    def test_observe_tracks_count_sum_min_max(self):
        hist = Histogram()
        for value in (1, 5, 3):
            hist.observe(value)
        assert (hist.count, hist.total, hist.min, hist.max) == (3, 9, 1, 5)
        assert hist.mean == 3

    def test_power_of_two_buckets(self):
        hist = Histogram()
        for value in (1, 2, 3, 4, 5, 100):
            hist.observe(value)
        # <=1 -> 0, <=2 -> 1, <=4 -> 2, <=8 -> 3, <=128 -> 7
        assert hist.buckets == {0: 1, 1: 1, 2: 2, 3: 1, 7: 1}

    def test_merge_adds_contents(self):
        a, b = Histogram(), Histogram()
        a.observe(2)
        b.observe(10)
        b.observe(1)
        a.merge(b)
        assert (a.count, a.total, a.min, a.max) == (3, 13, 1, 10)

    def test_registry_observe(self):
        reg = MetricsRegistry()
        reg.observe("op.io", 4, kind="retrieve")
        reg.observe("op.io", 6, kind="retrieve")
        hist = reg.histogram("op.io", kind="retrieve")
        assert hist.count == 2
        assert hist.mean == 5


class TestSnapshot:
    def test_as_dict_is_deterministic_and_jsonable(self):
        reg = MetricsRegistry()
        reg.inc("io.pages", 2, op="read", kind="child")
        reg.set_gauge("pool.resident", 12)
        reg.observe("op.io", 3, kind="retrieve")
        snap = reg.as_dict()
        assert snap["counters"] == {"io.pages{kind=child,op=read}": 2}
        assert snap["gauges"] == {"pool.resident": 12}
        assert snap["histograms"]["op.io{kind=retrieve}"]["count"] == 1
        json.dumps(snap)  # must be serialisable as-is

    def test_merge_folds_registries(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c", 1)
        b.inc("c", 2)
        b.set_gauge("g", 9)
        b.observe("h", 4)
        a.merge(b)
        assert a.counter("c") == 3
        assert a.gauge("g") == 9
        assert a.histogram("h").count == 1

    def test_reset_drops_everything(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.set_gauge("g", 1)
        reg.observe("h", 1)
        assert len(reg) == 3
        reg.reset()
        assert len(reg) == 0
        assert reg.as_dict() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestDefaultRegistry:
    def test_process_default_is_shared_and_resettable(self):
        reset_registry()
        registry().inc("smoke")
        assert registry().counter("smoke") == 1
        reset_registry()
        assert registry().counter("smoke") == 0
