"""The live sweep dashboard: pure presentation over progress events."""

import io

from repro.obs import spans as _spans
from repro.obs.dashboard import SweepDashboard, _fmt_seconds


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def dashboard(tty=False):
    stream = io.StringIO()
    clock = FakeClock()
    dash = SweepDashboard(stream=stream, force_tty=tty, clock=clock)
    return dash, stream, clock


def sweep_end(buffer=None, faults=None):
    return {
        "buffer": buffer or {},
        "faults": faults or {},
    }


class TestEventIntake:
    def test_counts_points_and_cache_hits(self):
        dash, _, clock = dashboard()
        dash("sweep_start", {"total": 10, "cache_hits": 4, "jobs": 1})
        for i in range(3):
            clock.now += 1.0
            dash("point_done", {"index": i, "failed": False})
        assert (dash.done_points, dash.total_points) == (7, 10)
        assert dash.executed_done == 3

    def test_sweep_end_accumulates_buffer_and_faults(self):
        dash, _, _ = dashboard()
        dash("sweep_start", {"total": 1, "cache_hits": 0})
        dash("sweep_end", sweep_end(
            buffer={"hits": 75, "misses": 25},
            faults={"retries": 2, "quarantined": ["fig3/p0"]},
        ))
        assert (dash.buffer_hits, dash.buffer_misses) == (75, 25)
        assert (dash.retries, dash.quarantined) == (2, 1)

    def test_multiple_sweeps_accumulate(self):
        dash, _, _ = dashboard()
        for _ in range(2):
            dash("sweep_start", {"total": 5, "cache_hits": 5})
            dash("sweep_end", sweep_end())
        assert dash.total_points == 10
        assert dash.done_points == 10


class TestStatusLine:
    def test_throughput_and_eta(self):
        dash, _, clock = dashboard()
        dash("sweep_start", {"total": 20, "cache_hits": 0})
        for i in range(10):
            clock.now += 1.0
            dash("point_done", {"index": i, "failed": False})
        line = dash.status_line()
        assert "10/20 pts" in line
        assert "1.0 pt/s" in line
        assert "eta 10s" in line

    def test_buffer_retry_quarantine_sections(self):
        dash, _, _ = dashboard()
        dash("sweep_start", {"total": 1, "cache_hits": 1})
        dash("sweep_end", sweep_end(
            buffer={"hits": 3, "misses": 1},
            faults={"retries": 5, "quarantined": ["x"]},
        ))
        line = dash.status_line()
        assert "buf 75.0%" in line
        assert "retries 5" in line
        assert "quarantined 1" in line

    def test_experiment_label_leads(self):
        dash, _, _ = dashboard()
        dash.set_experiment("fig4")
        assert dash.status_line().startswith("fig4 |")

    def test_hottest_spans_when_profiling(self):
        dash, _, _ = dashboard()
        dash("sweep_start", {"total": 1, "cache_hits": 0})
        with _spans.profiled() as prof:
            prof.add("db.build", 2_000_000_000)
            line = dash.status_line()
        assert "hot: db.build 2s" in line


class TestRendering:
    def test_dumb_stream_prints_one_line_per_sweep(self):
        dash, stream, _ = dashboard(tty=False)
        dash("sweep_start", {"total": 2, "cache_hits": 0})
        dash("point_done", {"index": 0, "failed": False})  # throttled away
        dash("sweep_end", sweep_end())
        assert stream.getvalue().count("\n") == 1

    def test_tty_repaints_in_place_with_padding(self):
        dash, stream, clock = dashboard(tty=True)
        dash.set_experiment("a-long-experiment-name")
        clock.now += 1.0
        dash.set_experiment("x")
        out = stream.getvalue()
        assert out.count("\r") == 2
        # second paint pads over the longer first line
        assert out.rstrip(" ").endswith("0/0 pts")

    def test_tty_refresh_is_throttled(self):
        dash, stream, clock = dashboard(tty=True)
        dash("sweep_start", {"total": 100, "cache_hits": 0})
        for i in range(50):  # no clock advance: within refresh window
            dash("point_done", {"index": i, "failed": False})
        assert stream.getvalue().count("\r") == 1

    def test_finish_releases_the_line_on_tty(self):
        dash, stream, _ = dashboard(tty=True)
        dash("sweep_start", {"total": 1, "cache_hits": 1})
        dash.finish()
        assert stream.getvalue().endswith("\n")


class TestFormatting:
    def test_fmt_seconds_scales_units(self):
        assert _fmt_seconds(42) == "42s"
        assert _fmt_seconds(90) == "1m30s"
        assert _fmt_seconds(3700) == "1h01m"
