"""Wall-clock span profiling: off-path cost, nesting, digest neutrality."""

import dataclasses

from repro.fault.chaos import chaos_points, result_digest
from repro.obs import spans
from repro.obs.spans import (
    NULL_SPAN,
    SAMPLE_CAP,
    SpanProfiler,
    SpanStat,
    profiled,
    span,
    traced_span,
)


class TestOffPath:
    def test_off_by_default(self):
        assert spans.enabled() is False
        assert spans.profiler() is None

    def test_disabled_span_is_the_shared_null_span(self):
        # The off path allocates nothing: every call site gets the one
        # module-level no-op context manager back, whatever the name.
        assert span("driver.retrieve") is NULL_SPAN
        assert span("anything.else") is NULL_SPAN

    def test_null_span_is_a_noop_context_manager(self):
        with NULL_SPAN as opened:
            assert opened is None

    def test_disabled_decorator_calls_through(self):
        calls = []

        @traced_span("decorated")
        def fn(x):
            calls.append(x)
            return x + 1

        assert fn(1) == 2
        assert calls == [1]

    def test_enable_disable_roundtrip(self):
        prof = spans.enable()
        try:
            assert spans.profiler() is prof
            assert spans.enable() is prof  # idempotent
        finally:
            assert spans.disable() is prof
        assert spans.profiler() is None


class TestNesting:
    def test_paths_join_the_enclosing_chain(self):
        with profiled() as prof:
            with span("outer"):
                with span("inner"):
                    pass
                with span("inner"):
                    pass
        assert sorted(prof.stats) == ["outer", "outer;inner"]
        assert prof.stats["outer"].count == 1
        assert prof.stats["outer;inner"].count == 2

    def test_child_time_attributed_to_parent(self):
        with profiled() as prof:
            with span("outer"):
                with span("inner"):
                    pass
        outer = prof.stats["outer"]
        inner = prof.stats["outer;inner"]
        assert outer.child_ns == inner.total_ns
        assert outer.self_ns == outer.total_ns - inner.total_ns

    def test_add_records_a_leaf_under_the_current_stack(self):
        with profiled() as prof:
            with span("op"):
                prof.add("codec.encode", 1000)
                prof.add("codec.encode", 3000)
        stat = prof.stats["op;codec.encode"]
        assert (stat.count, stat.total_ns) == (2, 4000)
        assert prof.stats["op"].child_ns >= 4000

    def test_decorator_nests_like_a_span(self):
        @traced_span("leaf")
        def leaf():
            return 7

        with profiled() as prof:
            with span("root"):
                assert leaf() == 7
        assert "root;leaf" in prof.stats

    def test_profiled_restores_the_previous_profiler(self):
        outer = spans.enable(SpanProfiler())
        try:
            with profiled() as inner:
                assert spans.profiler() is inner
            assert spans.profiler() is outer
        finally:
            spans.disable()


class TestSpanStat:
    def test_aggregates_count_total_min_max(self):
        stat = SpanStat()
        for ns in (300, 100, 200):
            stat.add(ns)
        assert (stat.count, stat.total_ns) == (3, 600)
        assert (stat.min_ns, stat.max_ns) == (100, 300)

    def test_percentiles_from_samples(self):
        stat = SpanStat()
        for ns in range(1, 101):
            stat.add(ns)
        assert stat.percentile_ns(50) <= stat.percentile_ns(95)
        assert stat.percentile_ns(99) <= 100

    def test_reservoir_decimation_is_deterministic(self):
        def fill():
            stat = SpanStat()
            for ns in range(3 * SAMPLE_CAP):
                stat.add(ns)
            return stat

        a, b = fill(), fill()
        assert len(a.samples) <= SAMPLE_CAP
        assert a.samples == b.samples
        assert a.count == 3 * SAMPLE_CAP  # counters never sampled away

    def test_as_dict_key_order_is_fixed(self):
        stat = SpanStat()
        stat.add(1_000_000)
        assert list(stat.as_dict()) == [
            "count", "total_ms", "self_ms", "min_ms", "max_ms",
            "p50_ms", "p95_ms", "p99_ms",
        ]


class TestProfilerViews:
    def test_rollups_are_path_sorted(self):
        with profiled() as prof:
            with span("b"):
                pass
            with span("a"):
                with span("z"):
                    pass
        assert list(prof.rollups()) == ["a", "a;z", "b"]

    def test_hottest_ranks_by_total(self):
        prof = SpanProfiler()
        prof.add("cold", 10)
        prof.add("hot", 1000)
        assert [path for path, _ in prof.hottest(2)] == ["hot", "cold"]

    def test_collapsed_emits_self_time_in_microseconds(self):
        prof = SpanProfiler()
        prof.add("a", 5_000_000)
        with prof.span("a"):
            pass  # parent wrapper around nothing
        text = prof.collapsed()
        assert text.endswith("\n")
        line = [l for l in text.splitlines() if l.startswith("a ")][0]
        assert int(line.split()[1]) >= 5000

    def test_merge_folds_counts_and_extremes(self):
        a, b = SpanProfiler(), SpanProfiler()
        a.add("x", 100)
        b.add("x", 10)
        b.add("y", 1)
        a.merge(b)
        assert a.stats["x"].count == 2
        assert a.stats["x"].min_ns == 10
        assert a.stats["x"].max_ns == 100
        assert a.stats["y"].count == 1

    def test_reset_clears_everything(self):
        prof = SpanProfiler()
        prof.add("x", 1)
        prof.reset()
        assert prof.stats == {}


class TestDigestNeutrality:
    """The tentpole guarantee: profiling on cannot change a result."""

    def test_traced_sweep_digest_identical_spans_on_vs_off(self):
        from repro.experiments.pool import run_sweep

        points = chaos_points(0.1)
        baseline = run_sweep(points)
        with profiled() as prof:
            traced = run_sweep(points)
        # The profiler actually saw the run...
        assert prof.stats, "span-profiled sweep recorded no spans"
        assert any(p.startswith("point.execute") for p in prof.stats)
        # ...and the measured results — including every traced event
        # digest — are bit-identical to the spans-off run.
        assert result_digest(traced) == result_digest(baseline)

    def test_wall_clock_never_reaches_the_report_dataclass(self):
        from repro.workload.driver import measure_strategy
        from repro.workload.params import WorkloadParams

        params = WorkloadParams().scaled(0.02)
        report = measure_strategy(params, "BFS")
        assert report.wall_ns  # annotation present...
        assert "wall_ns" not in dataclasses.asdict(report)  # ...invisible
