"""`repro perf`: trend tables, regression flags, flamegraph export."""

import cProfile
import os

from repro.obs.ledger import LEDGER_FILENAME, RunLedger
from repro.obs.perfcli import (
    collapsed_from_pstats,
    comparable_pair,
    perf_flame,
    perf_trend,
    render_diff,
    render_micro,
    render_spans,
    render_trend,
)


def report(scale=0.1, jobs=1, seconds=10.0, ts=1_000_000, executed=4,
           spans=None):
    record = {
        "kind": "report",
        "ts": ts,
        "git": "deadbeef0000",
        "scale": scale,
        "jobs": jobs,
        "total_seconds": seconds,
        "experiments": [
            {
                "name": "fig3",
                "seconds": seconds,
                "points": 6,
                "cache_hits": 2,
                "executed": executed,
            }
        ],
        "quarantined": [],
    }
    if spans:
        record["spans"] = spans
    return record


class TestTrend:
    def test_empty_ledger_renders_nothing(self):
        assert render_trend([]) is None

    def test_rows_carry_run_vitals(self):
        table = render_trend([report(seconds=12.5)])
        assert "12.5" in table and "deadbeef0000" in table

    def test_last_limits_rows(self):
        records = [report(ts=1_000_000 + i) for i in range(5)]
        table = render_trend(records, last=2)
        assert "2 of 5" in table


class TestComparablePair:
    def test_matches_same_scale_and_jobs(self):
        records = [
            report(scale=0.1, seconds=1.0, ts=1),
            report(scale=0.5, seconds=9.0, ts=2),
            report(scale=0.1, seconds=2.0, ts=3),
        ]
        earlier, latest = comparable_pair(records)
        assert earlier["total_seconds"] == 1.0
        assert latest["total_seconds"] == 2.0

    def test_no_match_returns_none(self):
        records = [report(scale=0.1, ts=1), report(scale=0.5, ts=2)]
        assert comparable_pair(records) is None
        assert comparable_pair([report()]) is None


class TestDiff:
    def test_flags_regression_past_threshold(self):
        table, flagged = render_diff(
            report(seconds=1.0), report(seconds=2.0), threshold=0.25
        )
        assert "REGRESSED" in table
        assert flagged and "fig3" in flagged[0]

    def test_small_drift_not_flagged(self):
        table, flagged = render_diff(
            report(seconds=1.0), report(seconds=1.1), threshold=0.25
        )
        assert flagged == []
        assert "REGRESSED" not in table

    def test_cache_served_runs_never_flag(self):
        # A fully cache-served run finishes in milliseconds; comparing
        # it against a cold run is noise, not a regression.
        table, flagged = render_diff(
            report(seconds=0.01, executed=0), report(seconds=2.0),
            threshold=0.25,
        )
        assert flagged == []

    def test_new_experiment_marked_new(self):
        earlier = report()
        earlier["experiments"] = []
        table, flagged = render_diff(earlier, report())
        assert "new" in table and flagged == []


class TestSpansAndMicro:
    def test_spans_table_ranks_by_total(self):
        rollup = {"count": 2, "total_ms": 0.0, "p50_ms": 0.0,
                  "p95_ms": 0.0, "p99_ms": 0.0}
        record = report(spans={
            "cold": dict(rollup, total_ms=1.0),
            "hot": dict(rollup, total_ms=9.0),
        })
        table = render_spans(record)
        assert table.index("hot") < table.index("cold")
        assert render_spans(report()) is None

    def test_micro_table_shows_delta_vs_previous(self):
        records = [
            {"benchmarks": {"heap_scan": {"ns_per_op": 100,
                                          "p95_ns_per_op": 120}}},
            {"benchmarks": {"heap_scan": {"ns_per_op": 150,
                                          "p95_ns_per_op": 180}}},
        ]
        table = render_micro(records)
        assert "+50%" in table
        assert render_micro([]) is None


class TestPerfTrendCommand:
    def test_no_ledger_is_an_error(self, tmp_path, capsys):
        assert perf_trend(str(tmp_path)) == 1
        assert "no ledger" in capsys.readouterr().out

    def test_two_runs_render_trend_diff_and_spans(self, tmp_path, capsys):
        ledger = RunLedger(str(tmp_path / LEDGER_FILENAME))
        rollup = {"count": 4, "total_ms": 8.0, "p50_ms": 1.0,
                  "p95_ms": 2.0, "p99_ms": 2.5}
        ledger.append(report(seconds=1.0, ts=1))
        ledger.append(report(seconds=2.0, ts=2,
                             spans={"point.execute": rollup}))
        assert perf_trend(str(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "Report runs" in out
        assert "Wall time vs previous" in out
        assert "point.execute" in out and "p95_ms" in out
        assert "REGRESSION: fig3" in out


class TestFlame:
    def test_flame_from_span_profiled_run(self, tmp_path, capsys):
        assert perf_flame(str(tmp_path), scale=0.02, strategy="BFS") == 0
        path = tmp_path / "flame-spans-BFS.txt"
        text = path.read_text()
        assert text  # at least one collapsed stack
        for line in text.splitlines():
            stack, value = line.rsplit(" ", 1)
            assert stack and int(value) > 0

    def test_flame_from_pstats_dump(self, tmp_path, capsys):
        dump = str(tmp_path / "run.pstats")
        cProfile.run("sum(i * i for i in range(200000))", dump)
        text = collapsed_from_pstats(dump)
        assert text
        assert perf_flame(
            str(tmp_path), pstats_path=dump,
            flame_out=str(tmp_path / "flame.txt"),
        ) == 0
        assert os.path.exists(tmp_path / "flame.txt")
