"""The tracer: classification, stage annotation, capture, export."""

import pytest

from repro.core.strategies.base import make_strategy
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import (
    Tracer,
    TraceEvent,
    active,
    classify_relation,
    normalize_relation,
    read_jsonl,
    stage,
)
from repro.workload.driver import run_sequence
from repro.workload.queries import generate_sequence


class TestClassification:
    @pytest.mark.parametrize(
        "name,kind",
        [
            ("ParentRel", "parent"),
            ("ChildRel", "child"),
            ("ChildRel-2", "child"),
            ("ClusterRel", "cluster"),
            ("ClusterRel-oid-isam", "cluster"),
            ("Cache", "cache"),
            ("InsideCache", "cache"),
            ("bfs-temp-17", "temp"),
            ("smart-temp-3", "temp"),
            ("sort-run-8", "temp"),
            ("sort-merge-2", "temp"),
            ("SomethingElse", "other"),
        ],
    )
    def test_classify_relation(self, name, kind):
        assert classify_relation(name) == kind

    def test_temp_names_lose_their_counter_suffix(self):
        assert normalize_relation("bfs-temp-17", "temp") == "bfs-temp"
        assert normalize_relation("sort-run-8", "temp") == "sort-run"
        # non-numeric tails and non-temp kinds pass through untouched
        assert normalize_relation("heap", "temp") == "heap"
        assert normalize_relation("ChildRel-2", "child") == "ChildRel-2"


class TestStageAnnotation:
    def test_noop_when_no_tracer_is_active(self):
        assert active() is None
        context = stage("scan")
        with context:
            pass  # must not raise and must not allocate a tracer
        assert stage("probe") is stage("sort")  # shared singleton

    def test_stages_nest_and_restore(self):
        tracer = Tracer(registry=MetricsRegistry())
        tracer.activate()
        try:
            with stage("probe"):
                assert tracer.stage == "probe"
                with stage("cache-probe"):
                    assert tracer.stage == "cache-probe"
                assert tracer.stage == "probe"
            assert tracer.stage is None
        finally:
            tracer.deactivate()

    def test_second_tracer_cannot_activate(self):
        first = Tracer(registry=MetricsRegistry())
        second = Tracer(registry=MetricsRegistry())
        first.activate()
        try:
            with pytest.raises(RuntimeError):
                second.activate()
        finally:
            first.deactivate()
        assert active() is None


class TestCapture:
    def test_hook_chaining_preserves_previous_hook(self, tiny_db_plain):
        db = tiny_db_plain
        seen = []
        db.disk.io_hook = lambda op, pid: seen.append(op)
        tracer = Tracer(registry=MetricsRegistry())
        with tracer.observe(db.disk):
            list(db.parents_in_range(0, 5))
        assert tracer.total > 0
        assert len(seen) == tracer.total  # previous hook saw every access
        assert db.disk.io_hook is not None  # restored, not clobbered
        db.disk.io_hook = None

    def test_events_carry_full_attribution(self, tiny_db_plain):
        db = tiny_db_plain
        tracer = Tracer(registry=MetricsRegistry())
        tracer.strategy = "DFS"
        with tracer.observe(db.disk):
            tracer.begin_op("retrieve", 3)
            with stage("scan"):
                list(db.parents_in_range(0, 5))
            tracer.end_op()
        event = tracer.events[0]
        assert event.relation == "ParentRel"
        assert event.kind == "parent"
        assert event.stage == "scan"
        assert event.op_kind == "retrieve"
        assert event.op_index == 3
        assert event.strategy == "DFS"

    def test_summary_totals_match_disk_counters(self, tiny_db_plain):
        db = tiny_db_plain
        db.start_measurement(cold=True)
        tracer = Tracer(registry=MetricsRegistry())
        with tracer.observe(db.disk):
            list(db.parents_in_range(0, 9))
        counters = db.disk.snapshot()
        summary = tracer.summary()
        assert summary["reads"] == counters.reads
        assert summary["writes"] == counters.writes
        assert summary["events"] == counters.total

    def test_registry_receives_tagged_page_counters(self, tiny_db_plain):
        db = tiny_db_plain
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry)
        with tracer.observe(db.disk):
            with stage("scan"):
                list(db.parents_in_range(0, 9))
        assert registry.sum_counters("io.pages") == tracer.total
        assert registry.sum_counters("io.pages", stage="scan") == tracer.total

    def test_detach_stops_capture(self, tiny_db_plain):
        db = tiny_db_plain
        tracer = Tracer(registry=MetricsRegistry())
        with tracer.observe(db.disk):
            list(db.parents_in_range(0, 3))
        seen = tracer.total
        list(db.parents_in_range(0, 9))  # after detach: not traced
        assert tracer.total == seen


class TestExport:
    def test_jsonl_round_trip(self, tiny_params, tiny_db_plain, tmp_path):
        db = tiny_db_plain
        strategy = make_strategy("DFS")
        sequence = generate_sequence(tiny_params, db)
        tracer = Tracer(registry=MetricsRegistry(), keep_events=True)
        run_sequence(db, strategy, sequence, tracer=tracer)
        path = str(tmp_path / "events.jsonl")
        written = tracer.write_jsonl(path)
        events = read_jsonl(path)
        assert written == len(tracer.events) > 0
        assert all(isinstance(e, TraceEvent) for e in events)
        assert events == tracer.events

    def test_aggregate_only_tracer_refuses_export(self, tmp_path):
        tracer = Tracer(registry=MetricsRegistry(), keep_events=False)
        with pytest.raises(RuntimeError):
            tracer.write_jsonl(str(tmp_path / "nope.jsonl"))

    def test_aggregate_only_summary_matches_full_trace(
        self, tiny_params, tiny_db_plain
    ):
        db = tiny_db_plain
        strategy = make_strategy("DFS")
        sequence = generate_sequence(tiny_params, db)
        full = Tracer(registry=MetricsRegistry(), keep_events=True)
        run_sequence(db, strategy, sequence, tracer=full)
        lean = Tracer(registry=MetricsRegistry(), keep_events=False)
        run_sequence(db, strategy, sequence, tracer=lean)
        assert lean.events == []
        assert full.summary() == lean.summary()
