"""run_serve end to end: nominal, storm, ledger, and the chaos phase."""

import json
import os

import pytest

from repro.fault import plan as _fault
from repro.fault.chaos import run_chaos
from repro.obs import ledger as _ledger
from repro.serve.run import run_serve


@pytest.fixture(autouse=True)
def no_fault_plan():
    yield
    _fault.clear()


SMALL = dict(
    scale=0.02,
    clients=2,
    duration=1.0,
    readers=2,
    queue_depth=8,
    publish_interval=0.02,
    pr_update=0.3,
    quiet=True,
)


class TestNominal:
    def test_nominal_run_verifies_and_ledgers(self, tmp_path):
        json_out = tmp_path / "serve.json"
        code = run_serve(out=str(tmp_path), json_out=str(json_out), **SMALL)
        assert code == 0
        summary = json.loads(json_out.read_text())
        assert summary["verified"] is True
        assert summary["mismatches"] == []
        assert summary["stuck_threads"] == []
        assert summary["requests"]["acknowledged"] > 0
        assert summary["requests"]["errors"] == 0
        assert summary["throughput_rps"] > 0
        assert summary["latency_ms"]["retrieve"]["p95"] >= 0
        # Exactly one kind=serve record landed in the ledger, schema 2.
        ledger = _ledger.RunLedger(
            os.path.join(str(tmp_path), _ledger.LEDGER_FILENAME)
        )
        records = ledger.read("serve")
        assert len(records) == 1
        assert records[0]["schema"] == _ledger.LEDGER_SCHEMA == 2
        assert records[0]["requests"]["acknowledged"] > 0

    def test_no_ledger_flag_skips_the_ledger(self, tmp_path):
        code = run_serve(out=str(tmp_path), ledger=False, **SMALL)
        assert code == 0
        assert not (tmp_path / _ledger.LEDGER_FILENAME).exists()


class TestStorm:
    def test_storm_sheds_with_typed_rejections_and_recovers(self, tmp_path):
        json_out = tmp_path / "storm.json"
        params = dict(SMALL)
        params.update(duration=1.5, queue_depth=4, clients=3)
        code = run_serve(
            out=str(tmp_path), json_out=str(json_out), storm=4,
            ledger=False, **params
        )
        # Shedding is the contract working: the run itself must pass.
        assert code == 0
        summary = json.loads(json_out.read_text())
        assert summary["verified"] is True
        assert [phase["phase"] for phase in summary["phases"]] == [
            "nominal", "storm", "recovery",
        ]
        assert summary["requests"]["shed"] > 0
        # Every shed was a typed rejection the admission queue counted.
        assert sum(summary["admission"]["shed"].values()) > 0
        assert summary["recovered"] is True
        assert summary["stuck_threads"] == []


class TestChaosServePhase:
    def test_chaos_serve_phase_fires_all_faults_and_verifies(self, tmp_path):
        code = run_chaos(
            scale=0.02,
            fault_seed=0,
            out=str(tmp_path),
            phase="serve",
            serve_duration=2.0,
        )
        assert code == 0
        summary = json.loads(
            (tmp_path / "chaos" / "CHAOS_serve.json").read_text()
        )
        assert summary["verified"] is True
        assert summary["requests"]["errors"] == 0
        assert summary["publish"]["crashes"] >= 1
        assert summary["stuck_threads"] == []
