"""Admission queue: typed fast-reject, degradation tiers, hysteresis."""

import pytest

from repro.errors import Overloaded
from repro.serve.admission import AdmissionQueue
from repro.serve.server import ServeRequest
from repro.util.deadline import Deadline


def _request(kind="retrieve", traced=False, deadline=None, seq=0):
    return ServeRequest(seq, kind, op=None, traced=traced, deadline=deadline)


class TestBoundedQueue:
    def test_fifo_order(self):
        queue = AdmissionQueue(max_depth=8)
        for seq in range(3):
            queue.admit(_request(seq=seq))
        assert [queue.next(0.01).seq for _ in range(3)] == [0, 1, 2]

    def test_full_queue_rejects_with_reason_and_depth(self):
        queue = AdmissionQueue(max_depth=4)
        for seq in range(4):
            queue.admit(_request(seq=seq))
        with pytest.raises(Overloaded) as info:
            queue.admit(_request(seq=99))
        assert info.value.reason == "queue_full"
        assert info.value.depth == 4
        assert queue.stats()["shed"] == {"queue_full": 1}

    def test_expired_deadline_is_rejected_before_consuming_capacity(self):
        queue = AdmissionQueue(max_depth=4)
        expired = Deadline.after(-1.0)
        with pytest.raises(Overloaded) as info:
            queue.admit(_request(deadline=expired))
        assert info.value.reason == "deadline"
        assert queue.depth() == 0

    def test_next_times_out_and_close_wakes_consumers(self):
        queue = AdmissionQueue(max_depth=4)
        assert queue.next(timeout=0.01) is None
        queue.admit(_request(seq=1))
        queue.close()
        # Admitted work still drains after close; new admits are refused.
        assert queue.next(timeout=0.01).seq == 1
        assert queue.next(timeout=0.01) is None
        with pytest.raises(Overloaded):
            queue.admit(_request(seq=2))


class TestDegradationTiers:
    def _fill(self, queue, count):
        for seq in range(count):
            queue.admit(_request(seq=seq))

    def test_updates_shed_before_reads(self):
        queue = AdmissionQueue(max_depth=16)  # tiers at 8 and 12
        self._fill(queue, 8)
        with pytest.raises(Overloaded) as info:
            queue.admit(_request(kind="update"))
        assert info.value.reason == "shed_updates"
        assert info.value.tier == "shed_updates"
        # Reads still flow in the shed_updates tier.
        queue.admit(_request(kind="retrieve"))

    def test_traced_shed_only_in_worst_tier(self):
        queue = AdmissionQueue(max_depth=16)
        self._fill(queue, 8)
        queue.admit(_request(traced=True))  # shed_updates tier: traced ok
        self._fill_to_depth(queue, 12)
        with pytest.raises(Overloaded) as info:
            queue.admit(_request(traced=True))
        assert info.value.reason == "shed_traced"
        # Plain reads still flow even in the worst tier.
        queue.admit(_request(kind="retrieve"))

    def _fill_to_depth(self, queue, depth):
        seq = 1000
        while queue.depth() < depth:
            queue.admit(_request(seq=seq))
            seq += 1

    def test_hysteresis_exits_below_half_the_entry_watermark(self):
        queue = AdmissionQueue(max_depth=16)  # enter shed_updates at 8
        self._fill(queue, 8)
        queue.admit(_request())  # pushes tier to shed_updates
        assert queue.stats()["tier"] == "shed_updates"
        # Drain to just above the exit watermark (8 // 2 = 4): still shed.
        while queue.depth() > 4:
            queue.next(0.01)
        with pytest.raises(Overloaded):
            queue.admit(_request(kind="update"))
        # Drain below it: tier drops back to nominal, updates flow again.
        while queue.depth() > 3:
            queue.next(0.01)
        queue.next(0.01)
        queue.admit(_request(kind="update"))
        stats = queue.stats()
        assert stats["tier"] == "nominal"
        assert stats["tier_changes"] >= 2

    def test_stats_track_admitted_and_max_depth(self):
        queue = AdmissionQueue(max_depth=8)
        self._fill(queue, 5)
        stats = queue.stats()
        assert stats["admitted"] == 5
        assert stats["max_depth_seen"] == 5
        assert stats["max_depth"] == 8
