"""A sqlite3 referee for the serve layer's replay oracle.

``replay_oracle`` replays a serve run through the engine itself, so an
engine bug that corrupts serving and replay identically would go
unseen.  This suite re-derives every acknowledged retrieve digest from
an *independent* implementation: the base snapshot's parent/child
relations are exported into an in-memory sqlite3 database, the epoch
log's updates are applied as SQL UPDATEs, and each retrieve re-executes
as a join ordered exactly the way the DFS strategy orders its results
(parents by OID, children by position within the parent).
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.serve.server import ServeRequest, SnapshotServer, result_digest
from repro.storage.snapshot import Snapshot
from repro.util.rng import derive_rng
from repro.workload.generator import build_database
from repro.workload.queries import random_retrieve, random_update


@pytest.fixture
def base_snapshot(tiny_params):
    return Snapshot.freeze(build_database(tiny_params))


@pytest.fixture
def dfs_server(base_snapshot):
    srv = SnapshotServer(
        base_snapshot,
        strategy="DFS",
        readers=2,
        queue_depth=32,
        publish_interval=0.01,
    )
    srv.start()
    yield srv
    srv.stop(join_timeout=10.0)


def _export_to_sqlite(base_snapshot) -> sqlite3.Connection:
    """Dump a fresh clone of the base snapshot into sqlite3 tables.

    ``ref(parent, pos, rel, key)`` is the parents' ``children`` OID
    lists; ``child(rel, key, ret1, ret2, ret3)`` is every child-relation
    tuple.  Both are read through the engine's own scans, but everything
    after this point — updates and retrieves — is pure SQL.
    """
    db = base_snapshot.attach()
    conn = sqlite3.connect(":memory:")
    conn.execute(
        "CREATE TABLE ref (parent INTEGER, pos INTEGER, rel INTEGER, key INTEGER)"
    )
    conn.execute(
        "CREATE TABLE child (rel INTEGER, key INTEGER,"
        " ret1 INTEGER, ret2 INTEGER, ret3 INTEGER,"
        " PRIMARY KEY (rel, key))"
    )
    for parent in db.parent_rel.scan():
        parent_key = db.parent_key_of(parent)
        for pos, oid in enumerate(db.children_of(parent)):
            conn.execute(
                "INSERT INTO ref VALUES (?, ?, ?, ?)",
                (parent_key, pos, oid.rel - 1, oid.key),
            )
    schema = db.child_schema
    for rel_index, rel in enumerate(db.child_rels):
        for record in rel.scan():
            conn.execute(
                "INSERT INTO child VALUES (?, ?, ?, ?, ?)",
                (
                    rel_index,
                    schema.value(record, "oid"),
                    schema.value(record, "ret1"),
                    schema.value(record, "ret2"),
                    schema.value(record, "ret3"),
                ),
            )
    return conn


def _sql_retrieve(conn: sqlite3.Connection, op) -> list:
    rows = conn.execute(
        "SELECT c.%s FROM ref r JOIN child c ON c.rel = r.rel AND c.key = r.key"
        " WHERE r.parent BETWEEN ? AND ? ORDER BY r.parent, r.pos" % op.attr,
        (op.lo, op.hi),
    ).fetchall()
    return [row[0] for row in rows]


def _sql_update(conn: sqlite3.Connection, op) -> None:
    for rel_index, key in op.refs:
        cursor = conn.execute(
            "UPDATE child SET ret1 = ? WHERE rel = ? AND key = ?",
            (op.value, rel_index, key),
        )
        assert cursor.rowcount == 1, "update ref (%d, %d) matched %d rows" % (
            rel_index,
            key,
            cursor.rowcount,
        )


def _run_mixed(server, tiny_params, base_snapshot, seed=11):
    rng = derive_rng(seed)
    counts = [rel.num_records for rel in base_snapshot._db.child_rels]
    requests = []
    seq = 0
    for _ in range(6):
        requests.append(
            ServeRequest(seq, "retrieve", random_retrieve(tiny_params, rng))
        )
        requests.append(
            ServeRequest(seq + 1, "update", random_update(tiny_params, counts, rng))
        )
        seq += 2
    for request in requests:
        server.submit(request)
    for request in requests:
        assert request.done.wait(10.0), "request %d never finished" % request.seq
        assert request.status == "ok"
    return requests


class TestSqliteReferee:
    def test_acked_digests_match_sqlite_replay(
        self, dfs_server, base_snapshot, tiny_params
    ):
        _run_mixed(dfs_server, tiny_params, base_snapshot)
        conn = _export_to_sqlite(base_snapshot)
        by_epoch = {}
        for epoch, op, digest in dfs_server.acked_retrieves:
            by_epoch.setdefault(epoch, []).append((op, digest))

        def check(epoch):
            for op, digest in by_epoch.pop(epoch, []):
                sql_digest = result_digest(_sql_retrieve(conn, op))
                assert sql_digest == digest, (
                    "epoch %d: served digest %s, sqlite says %s"
                    % (epoch, digest, sql_digest)
                )

        check(0)
        for epoch, ops in sorted(dfs_server.epoch_log, key=lambda entry: entry[0]):
            for op in ops:
                _sql_update(conn, op)
            check(epoch)
        assert not by_epoch, (
            "retrieves acked at never-published epochs: %s" % sorted(by_epoch)
        )
        conn.close()

    def test_sqlite_and_engine_replay_agree(
        self, dfs_server, base_snapshot, tiny_params
    ):
        """Both referees must pass on the same run: the engine-based
        replay_oracle finds no mismatch, and the final sqlite state
        equals a full engine replay of the epoch log."""
        from repro.serve.server import replay_oracle

        _run_mixed(dfs_server, tiny_params, base_snapshot)
        assert (
            replay_oracle(
                base_snapshot,
                dfs_server.strategy_name,
                dfs_server.epoch_log,
                dfs_server.acked_retrieves,
                dfs_server.acked_updates,
            )
            == []
        )
        conn = _export_to_sqlite(base_snapshot)
        replayed = base_snapshot.attach()
        for epoch, ops in sorted(dfs_server.epoch_log, key=lambda entry: entry[0]):
            for op in ops:
                _sql_update(conn, op)
                replayed.apply_update(op.refs, op.value)
        schema = replayed.child_schema
        for rel_index, rel in enumerate(replayed.child_rels):
            for record in rel.scan():
                row = conn.execute(
                    "SELECT ret1 FROM child WHERE rel = ? AND key = ?",
                    (rel_index, schema.value(record, "oid")),
                ).fetchone()
                assert row is not None
                assert row[0] == schema.value(record, "ret1")
        conn.close()
