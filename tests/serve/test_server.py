"""SnapshotServer end-to-end: isolation, ack-on-publish, fault recovery."""

import pytest

from repro.fault import plan as _fault
from repro.fault.plan import FaultPlan, FaultSpec
from repro.serve.server import (
    ServeRequest,
    SnapshotServer,
    replay_oracle,
    result_digest,
)
from repro.core.strategies.base import make_strategy
from repro.storage.snapshot import Snapshot
from repro.util.deadline import Deadline
from repro.util.rng import derive_rng
from repro.workload.generator import build_database
from repro.workload.queries import random_retrieve, random_update


@pytest.fixture
def base_snapshot(tiny_params):
    return Snapshot.freeze(build_database(tiny_params))


@pytest.fixture
def server(base_snapshot):
    srv = SnapshotServer(
        base_snapshot, readers=2, queue_depth=32, publish_interval=0.01
    )
    srv.start()
    yield srv
    srv.stop(join_timeout=10.0)


@pytest.fixture(autouse=True)
def no_fault_plan():
    yield
    _fault.clear()


def _ops(tiny_params, base_snapshot, seed=7):
    rng = derive_rng(seed)
    counts = [rel.num_records for rel in base_snapshot._db.child_rels]
    retrieves = [random_retrieve(tiny_params, rng) for _ in range(8)]
    updates = [random_update(tiny_params, counts, rng) for _ in range(4)]
    return retrieves, updates


def _wait_all(requests, timeout=10.0):
    for request in requests:
        assert request.done.wait(timeout), "request %d never finished" % request.seq
    return requests


class TestServing:
    def test_retrieves_are_served_with_epoch_and_digest(
        self, server, base_snapshot, tiny_params
    ):
        retrieves, _ = _ops(tiny_params, base_snapshot)
        requests = [
            ServeRequest(seq, "retrieve", op) for seq, op in enumerate(retrieves)
        ]
        for request in requests:
            server.submit(request)
        _wait_all(requests)
        strategy = make_strategy("BFS")
        oracle_db = base_snapshot.attach()
        for request in requests:
            assert request.status == "ok"
            assert request.epoch == 0  # no updates: still the base version
            assert request.digest == result_digest(
                strategy.retrieve(oracle_db, request.op)
            )

    def test_updates_ack_only_at_a_published_epoch(
        self, server, base_snapshot, tiny_params
    ):
        _, updates = _ops(tiny_params, base_snapshot)
        requests = [
            ServeRequest(seq, "update", op) for seq, op in enumerate(updates)
        ]
        for request in requests:
            server.submit(request)
        _wait_all(requests)
        published = {epoch for epoch, _ in server.epoch_log}
        for request in requests:
            assert request.status == "ok"
            assert request.epoch in published

    def test_oracle_replay_is_clean_on_a_mixed_run(
        self, server, base_snapshot, tiny_params
    ):
        retrieves, updates = _ops(tiny_params, base_snapshot)
        requests = []
        seq = 0
        for retrieve, update in zip(retrieves, updates):
            requests.append(ServeRequest(seq, "retrieve", retrieve))
            requests.append(ServeRequest(seq + 1, "update", update))
            seq += 2
        for request in requests:
            server.submit(request)
        _wait_all(requests)
        mismatches = replay_oracle(
            base_snapshot,
            server.strategy_name,
            server.epoch_log,
            server.acked_retrieves,
            server.acked_updates,
        )
        assert mismatches == []

    def test_expired_deadline_is_cancelled_not_served(
        self, server, base_snapshot, tiny_params
    ):
        retrieves, _ = _ops(tiny_params, base_snapshot)
        request = ServeRequest(
            0, "retrieve", retrieves[0], deadline=Deadline.after(-1.0)
        )
        # An already-expired deadline is shed at admission...
        from repro.errors import Overloaded

        with pytest.raises(Overloaded):
            server.submit(request)
        # ...and one racing its expiry is either shed at admission or
        # finished as "deadline"/"ok" — but a cancelled request is never
        # recorded as acknowledged.
        racing = ServeRequest(
            1, "retrieve", retrieves[1], deadline=Deadline.after(1e-4)
        )
        try:
            server.submit(racing)
        except Overloaded:
            return
        assert racing.done.wait(5.0)
        if racing.status == "deadline":
            assert all(op is not racing.op for _, op, _ in server.acked_retrieves)

    def test_stop_reports_no_stuck_threads(self, base_snapshot):
        srv = SnapshotServer(base_snapshot, readers=2, publish_interval=0.01)
        srv.start()
        assert srv.stop(join_timeout=10.0) == []


class TestFaults:
    def test_publish_crash_is_retried_without_losing_acks(
        self, base_snapshot, tiny_params
    ):
        _fault.install(
            FaultPlan([FaultSpec("serve.publish_crash", count=2)], seed=0)
        )
        srv = SnapshotServer(
            base_snapshot, readers=2, queue_depth=32, publish_interval=0.01
        )
        srv.start()
        try:
            retrieves, updates = _ops(tiny_params, base_snapshot)
            requests = [
                ServeRequest(seq, "update", op) for seq, op in enumerate(updates)
            ]
            requests += [
                ServeRequest(100 + seq, "retrieve", op)
                for seq, op in enumerate(retrieves)
            ]
            for request in requests:
                srv.submit(request)
            _wait_all(requests)
        finally:
            stuck = srv.stop(join_timeout=10.0)
        assert stuck == []
        crashes = _fault.active().injections.get("serve.publish_crash", 0)
        assert crashes == 2
        assert all(request.status == "ok" for request in requests)
        assert (
            replay_oracle(
                base_snapshot,
                srv.strategy_name,
                srv.epoch_log,
                srv.acked_retrieves,
                srv.acked_updates,
            )
            == []
        )
