"""MVCC version chain: atomic publish, pinning, reader-driven retirement."""

import threading

import pytest

from repro.core.strategies.base import make_strategy
from repro.serve.version import VersionChain
from repro.storage.snapshot import Snapshot
from repro.workload.generator import build_database
from repro.workload.queries import random_retrieve, random_update
from repro.util.rng import derive_rng


@pytest.fixture
def base_snapshot(tiny_params):
    return Snapshot.freeze(build_database(tiny_params))


def _next_version(chain, strategy, update):
    """Build epoch head+1 the way the serve writer does."""
    lease = chain.acquire()
    try:
        clone = lease.attach()
        strategy.update(clone, update)
        snapshot = Snapshot.freeze(clone)
    finally:
        lease.release()
    return chain.publish(snapshot)


class TestPublishAndAcquire:
    def test_epochs_are_sequential_and_head_moves(self, base_snapshot, tiny_params):
        chain = VersionChain(base_snapshot)
        strategy = make_strategy("BFS")
        rng = derive_rng(1)
        counts = [rel.num_records for rel in base_snapshot._db.child_rels]
        assert chain.head_epoch() == 0
        for expected in (1, 2, 3):
            version = _next_version(
                chain, strategy, random_update(tiny_params, counts, rng)
            )
            assert version.epoch == expected
            assert chain.head_epoch() == expected

    def test_acquire_pins_the_head_at_acquire_time(self, base_snapshot):
        chain = VersionChain(base_snapshot)
        lease = chain.acquire()
        chain.publish(base_snapshot)  # head moves on
        assert lease.version.epoch == 0
        assert chain.head_epoch() == 1
        lease.release()

    def test_lease_is_a_context_manager_and_idempotent(self, base_snapshot):
        chain = VersionChain(base_snapshot)
        with chain.acquire() as lease:
            assert lease.version.readers == 1
        assert lease.version.readers == 0
        lease.release()  # second release is a no-op
        assert lease.version.readers == 0


class TestRetirement:
    """Satellite: pinned old versions stay readable; detaching releases."""

    def test_pinned_snapshot_readable_after_two_publishes(
        self, base_snapshot, tiny_params
    ):
        chain = VersionChain(base_snapshot)
        strategy = make_strategy("BFS")
        rng = derive_rng(2)
        counts = [rel.num_records for rel in base_snapshot._db.child_rels]
        query = random_retrieve(tiny_params, rng)

        # Pin epoch 0 and record what it reads.
        lease = chain.acquire()
        clone = lease.attach()
        before = strategy.retrieve(clone, query)

        # Two subsequent publishes, each mutating a fresh clone.
        for _ in range(2):
            _next_version(
                chain, strategy, random_update(tiny_params, counts, rng)
            )
        assert chain.head_epoch() == 2
        # The pinned epoch is still live and still reads the same values
        # (its pages are immutable; later versions copied on write).
        assert chain.live_version(0) is not None
        assert strategy.retrieve(clone, query) == before
        assert strategy.retrieve(lease.attach(), query) == before
        lease.release()

    def test_detaching_last_reader_releases_the_version(self, base_snapshot):
        chain = VersionChain(base_snapshot)
        one = chain.acquire()
        two = chain.acquire()
        chain.publish(base_snapshot)
        assert chain.live_version(0) is not None
        one.release()
        assert chain.live_version(0) is not None  # still pinned by `two`
        two.release()
        assert chain.live_version(0) is None
        assert chain.counters()["retired"] == 1

    def test_no_unbounded_growth_under_churn(self, base_snapshot):
        chain = VersionChain(base_snapshot)
        for _ in range(50):
            with chain.acquire():
                chain.publish(base_snapshot)
        counters = chain.counters()
        assert counters["published"] == 50
        # Only the head (plus at most the one briefly-pinned predecessor)
        # is ever live; everything else was retired as readers detached.
        assert counters["live"] == 1
        assert counters["max_live"] <= 2
        assert counters["retired"] == 50

    def test_unpinned_predecessor_retires_at_publish(self, base_snapshot):
        chain = VersionChain(base_snapshot)
        chain.publish(base_snapshot)
        assert chain.live_version(0) is None
        assert chain.live_count() == 1


class TestConcurrency:
    def test_concurrent_acquire_release_against_publishes(self, base_snapshot):
        chain = VersionChain(base_snapshot)
        errors = []

        def reader():
            try:
                for _ in range(200):
                    with chain.acquire() as lease:
                        assert lease.version.readers >= 1
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for _ in range(100):
            chain.publish(base_snapshot)
        for thread in threads:
            thread.join()
        assert not errors
        counters = chain.counters()
        assert counters["published"] == 100
        # Every superseded version must eventually retire: live is just
        # the head once all readers detached.
        assert counters["live"] == 1
