"""Property-based tests (hypothesis) for core data structures and invariants.

Example budgets come from the shared profile loaded in ``conftest.py``
(``HYPOTHESIS_PROFILE``, default ``quick``); tests do not pin their own
``@settings`` so one knob scales the whole suite.
"""

import random

from hypothesis import given, strategies as st

from repro.core.cache import UnitCache, unit_hashkey
from repro.core.oid import KEY_SPACE, Oid
from repro.core.queries import RetrieveQuery
from repro.core.strategies import make_strategy
from repro.query.sort import external_sort
from repro.query.temp import make_temp
from repro.storage.catalog import Catalog
from repro.storage.hashfile import stable_hash
from repro.storage.page import Page, PageId, PAGE_HEADER_BYTES, SLOT_BYTES
from repro.storage.record import CharField, IntField, Schema
from repro.util.stats import RunningStats, percentile

# ----------------------------------------------------------------------
# OIDs
# ----------------------------------------------------------------------


@given(rel=st.integers(0, 10**6), key=st.integers(0, KEY_SPACE - 1))
def test_oid_roundtrip(rel, key):
    oid = Oid(rel, key)
    assert Oid.decode(oid.encode()) == oid


@given(
    a=st.tuples(st.integers(0, 100), st.integers(0, KEY_SPACE - 1)),
    b=st.tuples(st.integers(0, 100), st.integers(0, KEY_SPACE - 1)),
)
def test_oid_encoding_is_order_preserving(a, b):
    oa, ob = Oid(*a), Oid(*b)
    assert (oa < ob) == (oa.encode() < ob.encode())


# ----------------------------------------------------------------------
# stable_hash
# ----------------------------------------------------------------------


@given(st.one_of(st.integers(), st.text(max_size=50)))
def test_stable_hash_deterministic_and_nonnegative(value):
    assert stable_hash(value) == stable_hash(value)
    assert stable_hash(value) >= 0


@given(st.lists(st.integers(0, 10**9), max_size=8))
def test_unit_hashkey_list_tuple_agree(keys):
    assert unit_hashkey(1, keys) == unit_hashkey(1, tuple(keys))


# ----------------------------------------------------------------------
# Pages
# ----------------------------------------------------------------------


@given(sizes=st.lists(st.integers(1, 400), max_size=60))
def test_page_byte_accounting(sizes):
    page = Page(PageId(0, 0), 2048)
    inserted = 0
    for size in sizes:
        if page.fits(size):
            page.insert(("r", size), size)
            inserted += 1
    assert len(page) == inserted
    assert page.used_bytes <= page.capacity
    expected = PAGE_HEADER_BYTES + sum(
        page.record_size(i) + SLOT_BYTES for i in range(len(page))
    )
    assert page.used_bytes == expected


@given(
    sizes=st.lists(st.integers(1, 200), min_size=1, max_size=30),
    delete_seed=st.integers(0, 2**16),
)
def test_page_delete_restores_budget(sizes, delete_seed):
    page = Page(PageId(0, 0), 4096)
    for size in sizes:
        if page.fits(size):
            page.insert(size, size)
    rng = random.Random(delete_seed)
    while len(page):
        page.delete(rng.randrange(len(page)))
    assert page.used_bytes == PAGE_HEADER_BYTES


# ----------------------------------------------------------------------
# B-tree vs model
# ----------------------------------------------------------------------


def _tree(catalog_pages=32):
    catalog = Catalog(buffer_pages=catalog_pages, page_size=512)
    schema = Schema([IntField("key"), IntField("value")])
    return catalog.create_btree("t", schema, "key")


@given(keys=st.lists(st.integers(0, 5000), unique=True, max_size=250))
def test_btree_insert_matches_sorted_model(keys):
    tree = _tree()
    for k in keys:
        tree.insert((k, k * 3))
    assert [r[0] for r in tree.scan()] == sorted(keys)
    tree.check_invariants()
    for k in keys[:20]:
        assert tree.lookup_one(k) == (k, k * 3)


@given(
    keys=st.lists(st.integers(0, 2000), unique=True, min_size=1, max_size=200),
    lo=st.integers(0, 2000),
    span=st.integers(0, 500),
)
def test_btree_range_scan_matches_model(keys, lo, span):
    tree = _tree()
    tree.bulk_load([(k, 0) for k in sorted(keys)])
    hi = lo + span
    got = [r[0] for r in tree.range_scan(lo, hi)]
    assert got == [k for k in sorted(keys) if lo <= k <= hi]


@given(
    initial=st.lists(st.integers(0, 3000), unique=True, min_size=1, max_size=150),
    extra=st.lists(st.integers(3001, 6000), unique=True, max_size=80),
)
def test_btree_bulk_load_then_insert(initial, extra):
    tree = _tree()
    tree.bulk_load([(k, 0) for k in sorted(initial)])
    for k in extra:
        tree.insert((k, 0))
    assert [r[0] for r in tree.scan()] == sorted(initial) + sorted(extra)
    tree.check_invariants()


# ----------------------------------------------------------------------
# Hash file vs dict model
# ----------------------------------------------------------------------


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete", "lookup"]),
            st.integers(0, 40),
        ),
        max_size=120,
    )
)
def test_hashfile_matches_dict_model(ops):
    catalog = Catalog(buffer_pages=16, page_size=512)
    schema = Schema([IntField("key"), CharField("v", 64)])
    hashfile = catalog.create_hash("h", schema, "key", buckets=4)
    model = {}
    for op, key in ops:
        if op == "insert":
            if key in model:
                continue
            hashfile.insert((key, "v%d" % key))
            model[key] = "v%d" % key
        elif op == "delete":
            if key in model:
                assert hashfile.delete(key) == (key, model.pop(key))
            else:
                assert not hashfile.delete_if_present(key)
        else:
            record = hashfile.lookup(key)
            if key in model:
                assert record == (key, model[key])
            else:
                assert record is None
    assert len(hashfile) == len(model)
    assert sorted(r[0] for r in hashfile.scan()) == sorted(model)


# ----------------------------------------------------------------------
# External sort
# ----------------------------------------------------------------------


@given(
    values=st.lists(st.integers(-10**6, 10**6), max_size=400),
    workspace=st.integers(3, 8),
)
def test_external_sort_matches_sorted(values, workspace):
    catalog = Catalog(buffer_pages=16, page_size=512)
    schema = Schema([IntField("OID")])
    temp = make_temp(catalog.pool, schema, [(v,) for v in values])
    result = external_sort(
        catalog.pool, temp, key=lambda r: r[0], workspace_pages=workspace
    )
    assert [r[0] for r in result.scan()] == sorted(values)
    result.drop()


@given(values=st.lists(st.integers(0, 50), max_size=200))
def test_external_sort_distinct_matches_set(values):
    catalog = Catalog(buffer_pages=16, page_size=512)
    schema = Schema([IntField("OID")])
    temp = make_temp(catalog.pool, schema, [(v,) for v in values])
    result = external_sort(
        catalog.pool, temp, key=lambda r: r[0], distinct=True
    )
    assert [r[0] for r in result.scan()] == sorted(set(values))
    result.drop()


# ----------------------------------------------------------------------
# Unit cache
# ----------------------------------------------------------------------


@given(
    unit_keys=st.lists(
        st.lists(st.integers(0, 60), unique=True, min_size=1, max_size=4),
        min_size=1,
        max_size=40,
    ),
    capacity=st.integers(1, 10),
)
def test_cache_never_exceeds_capacity_and_locks_consistent(unit_keys, capacity):
    catalog = Catalog(buffer_pages=16, page_size=512)
    cache = UnitCache(catalog, size_cache=capacity, unit_bytes_hint=100)
    for keys in unit_keys:
        hk = unit_hashkey(0, keys)
        if cache.contains(hk):
            continue
        payload = tuple((k,) for k in keys)
        cache.insert(hk, 0, keys, payload, 20 * len(keys))
        assert cache.num_cached <= capacity
        assert cache.lookup(hk) == payload
    # Invalidate everything through the subobjects; cache must drain.
    for keys in unit_keys:
        for k in keys:
            cache.invalidate_for_subobject(0, k)
    assert cache.num_cached == 0
    assert len(cache.ilocks) == 0


# ----------------------------------------------------------------------
# Strategy equivalence on random queries
# ----------------------------------------------------------------------


def _shared_db():
    # Build once; hypothesis only varies the queries.
    from repro.workload.generator import build_database
    from repro.workload.params import WorkloadParams

    if not hasattr(_shared_db, "db"):
        params = WorkloadParams(
            num_parents=120,
            use_factor=3,
            overlap_factor=2,
            num_child_rels=2,
            size_cache=15,
            buffer_pages=12,
            num_top=5,
            seed=13,
        )
        _shared_db.db = build_database(params, clustering=True, cache=True)
    return _shared_db.db


@given(
    lo=st.integers(0, 119),
    span=st.integers(0, 40),
    attr=st.sampled_from(["ret1", "ret2", "ret3"]),
)
def test_strategies_agree_on_random_queries(lo, span, attr):
    from collections import Counter

    db = _shared_db()
    hi = min(119, lo + span)
    query = RetrieveQuery(lo, hi, attr)
    db.reset_cache()
    reference = Counter(make_strategy("DFS").retrieve(db, query))
    for name in ("BFS", "DFSCACHE", "DFSCLUST", "SMART"):
        db.reset_cache()
        assert Counter(make_strategy(name).retrieve(db, query)) == reference, name


# ----------------------------------------------------------------------
# Statistics
# ----------------------------------------------------------------------


@given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
def test_running_stats_matches_batch(values):
    stats = RunningStats()
    stats.extend(values)
    assert stats.mean == sum(values) / len(values) or abs(
        stats.mean - sum(values) / len(values)
    ) < 1e-6 * max(1.0, abs(sum(values)))
    assert stats.minimum == min(values)
    assert stats.maximum == max(values)


@given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=100))
def test_percentile_bounds(values):
    assert percentile(values, 0) == min(values)
    assert percentile(values, 100) == max(values)
    assert min(values) <= percentile(values, 37) <= max(values)


# ----------------------------------------------------------------------
# Clustering assignment
# ----------------------------------------------------------------------


@given(
    data=st.lists(
        st.tuples(
            st.lists(st.integers(0, 30), unique=True, min_size=1, max_size=4),
            st.lists(st.integers(0, 20), unique=True, max_size=3),
        ),
        max_size=15,
    ),
    seed=st.integers(0, 2**16),
)
def test_cluster_assignment_invariants(data, seed):
    """Every subobject is placed at most once, only with a referencing
    parent of some unit that contains it, and referenced subobjects of
    parented units are always placed."""
    from repro.core.clustering import assign_clusters
    from repro.core.database import Unit

    units = [
        Unit(i, 0, tuple(sorted(keys)), tuple(parents))
        for i, (keys, parents) in enumerate(data)
    ]
    assignment = assign_clusters(units, random.Random(seed))

    placed = [ref for refs in assignment.claimed.values() for ref in refs]
    assert len(placed) == len(set(placed))  # each subobject once
    assert set(placed) == set(assignment.home_parent)

    for (rel, key), parent in assignment.home_parent.items():
        holders = [
            u for u in units if key in u.child_keys and parent in u.parents
        ]
        assert holders, "home parent must reference a unit holding the child"

    for unit in units:
        if unit.parents:
            for key in unit.child_keys:
                assert (0, key) in assignment.home_parent


@given(
    depth=st.integers(1, 3),
    lo=st.integers(0, 60),
    span=st.integers(0, 10),
)
def test_deep_bfs_dfs_agree(depth, lo, span):
    from collections import Counter

    from repro.core.deep import DeepQuery, deep_bfs, deep_dfs

    db = _shared_deep_db()
    hi = min(79, lo + span)
    query = DeepQuery(lo, hi, depth)
    assert Counter(deep_dfs(db, query)) == Counter(deep_bfs(db, query))


def _shared_deep_db():
    if not hasattr(_shared_deep_db, "db"):
        from repro.workload.deepgen import DeepParams, build_deep_database

        _shared_deep_db.db = build_deep_database(
            DeepParams(num_roots=80, depth=3, size_unit=3, use_factor=3,
                       buffer_pages=10, seed=5)
        )
    return _shared_deep_db.db


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete", "lookup"]),
            st.integers(0, 300),
        ),
        max_size=150,
    )
)
def test_btree_insert_delete_matches_model(ops):
    tree = _tree()
    model = {}
    for op, key in ops:
        if op == "insert":
            if key in model:
                continue
            tree.insert((key, key))
            model[key] = key
        elif op == "delete":
            if key in model:
                assert tree.delete(key) == (key, model.pop(key))
            else:
                assert not tree.delete_if_present(key)
        else:
            if key in model:
                assert tree.lookup_one(key) == (key, key)
            else:
                assert tree.lookup(key) == []
    assert [r[0] for r in tree.scan()] == sorted(model)
