"""Predicates."""

import pytest

from repro.query.expr import (
    AndPredicate,
    FieldBetween,
    FieldEquals,
    TruePredicate,
)
from repro.storage.record import CharField, IntField, Schema


@pytest.fixture
def schema():
    return Schema([IntField("age"), CharField("name", 20)])


class TestFieldEquals:
    def test_match(self, schema):
        pred = FieldEquals(schema, "name", "Mary")
        assert pred((62, "Mary"))
        assert not pred((62, "John"))


class TestFieldBetween:
    def test_inclusive_bounds(self, schema):
        pred = FieldBetween(schema, "age", 10, 20)
        assert pred((10, "x"))
        assert pred((20, "x"))
        assert not pred((9, "x"))
        assert not pred((21, "x"))

    def test_open_bounds(self, schema):
        assert FieldBetween(schema, "age", None, 15)((0, "x"))
        assert FieldBetween(schema, "age", 60, None)((99, "x"))

    def test_empty_range_rejected(self, schema):
        with pytest.raises(ValueError):
            FieldBetween(schema, "age", 20, 10)


class TestCombinators:
    def test_and(self, schema):
        pred = FieldBetween(schema, "age", 60, None) & FieldEquals(
            schema, "name", "Mary"
        )
        assert pred((62, "Mary"))
        assert not pred((62, "John"))
        assert not pred((30, "Mary"))

    def test_and_requires_parts(self):
        with pytest.raises(ValueError):
            AndPredicate([])

    def test_true_predicate(self, schema):
        assert TruePredicate()((1, "anything"))
