"""Join operators against a B-tree inner."""

import pytest

from repro.query.join import iterative_substitution_join, merge_probe_join
from repro.storage.record import CharField, IntField, Schema


@pytest.fixture
def inner(catalog):
    schema = Schema([IntField("key"), IntField("value"), CharField("pad", 64)])
    tree = catalog.create_btree("inner", schema, "key")
    tree.bulk_load([(k, k * 10, "p" * 40) for k in range(0, 1000, 2)])
    return tree


class TestMergeProbeJoin:
    def test_matches_in_order(self, inner):
        out = list(merge_probe_join([2, 4, 6], inner))
        assert [r[0] for r in out] == [2, 4, 6]

    def test_missing_keys_skipped(self, inner):
        out = list(merge_probe_join([1, 2, 3, 4], inner))
        assert [r[0] for r in out] == [2, 4]

    def test_duplicate_probe_keys_duplicate_output(self, inner):
        out = list(merge_probe_join([2, 2, 2], inner))
        assert [r[0] for r in out] == [2, 2, 2]

    def test_projection(self, inner):
        out = list(merge_probe_join([10, 20], inner, project=lambda r: r[1]))
        assert out == [100, 200]

    def test_empty_probe_stream(self, inner):
        assert list(merge_probe_join([], inner)) == []

    def test_sorted_probes_touch_each_leaf_once(self, catalog, inner):
        catalog.pool.clear(flush=True)
        catalog.disk.reset_counters()
        keys = list(range(0, 1000, 2))
        out = list(merge_probe_join(keys, inner))
        assert len(out) == 500
        # Reading every record sorted must cost at most one pass over the
        # tree's pages (leaves + index).
        assert catalog.disk.reads <= inner.num_pages

    def test_non_unique_inner_yields_group(self, catalog):
        schema = Schema([IntField("key"), IntField("value")])
        tree = catalog.create_btree("multi", schema, "key", unique=False)
        tree.bulk_load([(1, 1), (2, 21), (2, 22), (3, 3)])
        out = list(merge_probe_join([2], tree))
        assert sorted(r[1] for r in out) == [21, 22]


class TestIterativeSubstitution:
    def test_matches_any_order(self, inner):
        out = list(iterative_substitution_join([6, 2, 4], inner))
        assert [r[0] for r in out] == [6, 2, 4]

    def test_projection_and_misses(self, inner):
        out = list(
            iterative_substitution_join([2, 3], inner, project=lambda r: r[1])
        )
        assert out == [20]

    def test_same_results_as_merge_join(self, inner):
        keys = [0, 2, 2, 500, 998]
        merge = sorted(r[0] for r in merge_probe_join(sorted(keys), inner))
        nested = sorted(r[0] for r in iterative_substitution_join(keys, inner))
        assert merge == nested

    def test_random_probes_cost_more_than_sorted(self, catalog):
        # The inner must exceed the buffer pool for the access pattern to
        # matter (a fully resident tree makes every plan free).
        import random

        schema = Schema([IntField("key"), CharField("pad", 128)])
        tree = catalog.create_btree("big", schema, "key")
        tree.bulk_load([(k, "p" * 100) for k in range(4000)])
        assert tree.num_pages > catalog.pool.capacity

        keys = list(range(0, 4000, 2))
        catalog.pool.clear(flush=True)
        catalog.disk.reset_counters()
        list(merge_probe_join(keys, tree))
        sorted_cost = catalog.disk.reads

        rng = random.Random(0)
        shuffled = keys[:]
        rng.shuffle(shuffled)
        catalog.pool.clear(flush=True)
        catalog.disk.reset_counters()
        list(iterative_substitution_join(shuffled, tree))
        random_cost = catalog.disk.reads
        assert random_cost > sorted_cost
