"""Temporary relations: seal/drop lifecycle and I/O semantics."""

import pytest

from repro.query.temp import TempRelation, make_temp
from repro.storage.record import IntField, Schema

OID_SCHEMA = Schema([IntField("OID")])


class TestLifecycle:
    def test_fill_seal_scan(self, catalog):
        temp = make_temp(catalog.pool, OID_SCHEMA, [(i,) for i in range(100)])
        assert list(temp.scan()) == [(i,) for i in range(100)]
        assert temp.num_records == 100
        temp.drop()

    def test_insert_after_seal_rejected(self, catalog):
        temp = make_temp(catalog.pool, OID_SCHEMA, [(1,)])
        with pytest.raises(RuntimeError):
            temp.insert((2,))

    def test_context_manager_drops(self, catalog):
        with make_temp(catalog.pool, OID_SCHEMA, [(1,)]) as temp:
            file_id = temp.heap.file_id
        assert not catalog.disk.file_exists(file_id)

    def test_double_drop_is_safe(self, catalog):
        temp = make_temp(catalog.pool, OID_SCHEMA, [(1,)])
        temp.drop()
        temp.drop()

    def test_unsealed_when_requested(self, catalog):
        temp = make_temp(catalog.pool, OID_SCHEMA, [(1,)], seal=False)
        temp.insert((2,))  # still open
        assert temp.num_records == 2
        temp.drop()

    def test_names_are_unique(self, catalog):
        a = TempRelation(catalog.pool, OID_SCHEMA)
        b = TempRelation(catalog.pool, OID_SCHEMA)
        assert a.heap.name != b.heap.name


class TestIoSemantics:
    def test_seal_charges_writes(self, catalog):
        catalog.disk.reset_counters()
        temp = TempRelation(catalog.pool, OID_SCHEMA)
        for i in range(1000):
            temp.insert((i,))
        assert catalog.disk.writes == 0  # nothing forced yet
        temp.seal()
        assert catalog.disk.writes == temp.num_pages

    def test_seal_is_idempotent(self, catalog):
        temp = make_temp(catalog.pool, OID_SCHEMA, [(1,)])
        writes = catalog.disk.writes
        temp.seal()
        assert catalog.disk.writes == writes

    def test_small_temp_rescan_hits_buffer(self, catalog):
        temp = make_temp(catalog.pool, OID_SCHEMA, [(i,) for i in range(10)])
        catalog.disk.reset_counters()
        list(temp.scan())
        assert catalog.disk.reads == 0  # sealed but still resident

    def test_drop_discards_without_writes(self, catalog):
        temp = TempRelation(catalog.pool, OID_SCHEMA)
        for i in range(1000):
            temp.insert((i,))
        catalog.disk.reset_counters()
        temp.drop()
        assert catalog.disk.writes == 0
