"""External sort: correctness, dedup, run/merge structure, I/O."""

import random

import pytest

from repro.query.sort import external_sort
from repro.query.temp import make_temp
from repro.storage.record import IntField, Schema

SCHEMA = Schema([IntField("OID"), IntField("tag")])


def build_input(catalog, values, seal=True):
    return make_temp(catalog.pool, SCHEMA, [(v, i) for i, v in enumerate(values)])


class TestCorrectness:
    def test_sorts(self, catalog):
        rng = random.Random(1)
        values = [rng.randrange(10000) for _ in range(500)]
        temp = build_input(catalog, values)
        result = external_sort(catalog.pool, temp, key=lambda r: r[0])
        assert [r[0] for r in result.scan()] == sorted(values)
        result.drop()

    def test_empty_input(self, catalog):
        temp = build_input(catalog, [])
        result = external_sort(catalog.pool, temp, key=lambda r: r[0])
        assert list(result.scan()) == []
        result.drop()

    def test_single_record(self, catalog):
        temp = build_input(catalog, [42])
        result = external_sort(catalog.pool, temp, key=lambda r: r[0])
        assert [r[0] for r in result.scan()] == [42]
        result.drop()

    def test_already_sorted(self, catalog):
        temp = build_input(catalog, list(range(300)))
        result = external_sort(catalog.pool, temp, key=lambda r: r[0])
        assert [r[0] for r in result.scan()] == list(range(300))
        result.drop()

    def test_sort_is_stable_per_key_order_of_first(self, catalog):
        # dedup keeps the first record in key order.
        temp = build_input(catalog, [5, 5, 3, 3])
        result = external_sort(
            catalog.pool, temp, key=lambda r: r[0], distinct=True
        )
        assert [r[0] for r in result.scan()] == [3, 5]
        result.drop()


class TestDistinct:
    def test_removes_duplicates(self, catalog):
        values = [1, 7, 3, 7, 1, 9, 3]
        temp = build_input(catalog, values)
        result = external_sort(catalog.pool, temp, key=lambda r: r[0], distinct=True)
        assert [r[0] for r in result.scan()] == [1, 3, 7, 9]
        result.drop()


class TestExternalBehaviour:
    def test_multi_run_merge(self, catalog):
        # Tiny workspace forces several runs and a real merge pass.
        rng = random.Random(2)
        values = [rng.randrange(100000) for _ in range(3000)]
        temp = build_input(catalog, values)
        result = external_sort(
            catalog.pool, temp, key=lambda r: r[0], workspace_pages=3
        )
        assert [r[0] for r in result.scan()] == sorted(values)
        result.drop()

    def test_workspace_minimum(self, catalog):
        temp = build_input(catalog, [1])
        with pytest.raises(ValueError):
            external_sort(catalog.pool, temp, key=lambda r: r[0], workspace_pages=2)

    def test_source_dropped_by_default(self, catalog):
        temp = build_input(catalog, [3, 1, 2])
        file_id = temp.heap.file_id
        result = external_sort(catalog.pool, temp, key=lambda r: r[0])
        assert not catalog.disk.file_exists(file_id)
        result.drop()

    def test_source_kept_on_request(self, catalog):
        temp = build_input(catalog, [3, 1, 2])
        result = external_sort(
            catalog.pool, temp, key=lambda r: r[0], drop_source=False
        )
        assert list(temp.scan())  # still readable
        temp.drop()
        result.drop()

    def test_no_temp_files_leak(self, catalog):
        before = set(catalog.disk.file_ids())
        temp = build_input(catalog, list(range(2000)))
        result = external_sort(
            catalog.pool, temp, key=lambda r: r[0], workspace_pages=3
        )
        result.drop()
        assert set(catalog.disk.file_ids()) == before - set()  # inputs dropped too

    def test_small_sort_costs_little_io(self, catalog):
        temp = build_input(catalog, [5, 2, 9])
        catalog.disk.reset_counters()
        result = external_sort(catalog.pool, temp, key=lambda r: r[0])
        # One run write (sealed) at most a couple of pages; no read misses.
        assert catalog.disk.reads == 0
        assert catalog.disk.writes <= 2
        result.drop()
