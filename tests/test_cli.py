"""The command-line interface."""

import pytest

from repro.__main__ import main


class TestList:
    def test_lists_strategies_and_matrix(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("DFS", "BFS", "DFSCACHE", "DFSCLUST", "SMART", "PROC-EXEC"):
            assert name in out
        assert "shaded" in out


class TestRun:
    def test_measures_one_point(self, capsys):
        code = main(
            [
                "run",
                "--strategy",
                "BFS",
                "--scale",
                "0.05",
                "--num-top",
                "5",
                "--num-queries",
                "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "avg I/O per retrieve" in out
        assert "BFS" in out

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--strategy", "NOPE"])


class TestFootprint:
    def test_prints_relations(self, capsys):
        assert main(["footprint", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "ParentRel" in out
        assert "ClusterRel" in out
        assert "Cache" in out


class TestReport:
    def test_report_single_experiment(self, tmp_path, capsys):
        code = main(
            [
                "report",
                "--scale",
                "0.05",
                "--out",
                str(tmp_path),
                "--only",
                "ablation_buffer",
            ]
        )
        assert code == 0
        assert (tmp_path / "ablation_buffer.txt").exists()
        assert "A2" in capsys.readouterr().out


class TestExplainCommand:
    def test_explain_prints_plan(self, capsys):
        code = main(
            ["explain", "--strategy", "DFSCLUST", "--scale", "0.05",
             "--num-top", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ClusterRel" in out

    def test_explain_procedural(self, capsys):
        code = main(
            ["explain", "--strategy", "PROC-CACHE-VALUES", "--scale", "0.05",
             "--num-top", "5"]
        )
        assert code == 0
        assert "stored query" in capsys.readouterr().out
