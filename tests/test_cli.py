"""The command-line interface."""

import pytest

from repro.__main__ import main


class TestList:
    def test_lists_strategies_and_matrix(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("DFS", "BFS", "DFSCACHE", "DFSCLUST", "SMART", "PROC-EXEC"):
            assert name in out
        assert "shaded" in out


class TestRun:
    def test_measures_one_point(self, capsys):
        code = main(
            [
                "run",
                "--strategy",
                "BFS",
                "--scale",
                "0.05",
                "--num-top",
                "5",
                "--num-queries",
                "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "avg I/O per retrieve" in out
        assert "BFS" in out

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--strategy", "NOPE"])


class TestFootprint:
    def test_prints_relations(self, capsys):
        assert main(["footprint", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "ParentRel" in out
        assert "ClusterRel" in out
        assert "Cache" in out


class TestReport:
    def test_report_single_experiment(self, tmp_path, capsys):
        code = main(
            [
                "report",
                "--scale",
                "0.05",
                "--out",
                str(tmp_path),
                "--only",
                "ablation_buffer",
            ]
        )
        assert code == 0
        assert (tmp_path / "ablation_buffer.txt").exists()
        assert "A2" in capsys.readouterr().out


class TestExplainCommand:
    def test_explain_prints_plan(self, capsys):
        code = main(
            ["explain", "--strategy", "DFSCLUST", "--scale", "0.05",
             "--num-top", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ClusterRel" in out

    def test_explain_procedural(self, capsys):
        code = main(
            ["explain", "--strategy", "PROC-CACHE-VALUES", "--scale", "0.05",
             "--num-top", "5"]
        )
        assert code == 0
        assert "stored query" in capsys.readouterr().out


class TestTrace:
    def test_traces_one_strategy(self, capsys, tmp_path):
        out_path = tmp_path / "events.jsonl"
        metrics_path = tmp_path / "metrics.json"
        code = main(
            [
                "trace",
                "--strategy",
                "DFSCACHE",
                "--scale",
                "0.02",
                "--num-queries",
                "4",
                "--out",
                str(out_path),
                "--metrics-out",
                str(metrics_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "traced events" in out
        assert "ParCost (traced)" in out
        assert "self-check" in out
        assert "buffer hit rate" in out
        assert "cache-probe" in out  # DFSCACHE's stage breakdown

        import json

        from repro.obs import read_jsonl

        events = read_jsonl(str(out_path))
        assert events and all(e.strategy == "DFSCACHE" for e in events)
        with open(metrics_path) as handle:
            metrics = json.load(handle)
        assert sum(metrics["counters"].values()) >= len(events)

    def test_inside_cache_strategy_gets_its_facility(self, capsys):
        assert main(
            ["trace", "--strategy", "DFSCACHE-INSIDE", "--scale", "0.02",
             "--num-queries", "3"]
        ) == 0
        assert "self-check" in capsys.readouterr().out


class TestExplainMeasure:
    def test_prints_measured_counts_next_to_estimates(self, capsys):
        code = main(
            ["explain", "--strategy", "BFS", "--scale", "0.05", "--measure"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "measured (traced cold run)" in out
        assert "parent pages" in out
        assert "by stage" in out
        assert "merge-join" in out

    def test_plain_explain_unchanged_without_flag(self, capsys):
        assert main(["explain", "--strategy", "BFS", "--scale", "0.05"]) == 0
        assert "measured" not in capsys.readouterr().out
