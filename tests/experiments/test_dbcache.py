"""The database snapshot store inside the sweep engine.

The store must be invisible in the measurements: a point executed
against a snapshot-attached clone has to produce the exact event stream
(PR 2's trace digest) of one executed against a freshly built database.
These tests pin that for every registered strategy, and exercise the
process-shared on-disk store the way the report runner uses it —
serially, across runs, and from parallel workers.
"""

import dataclasses

import pytest

from repro.core.strategies.base import REGISTRY
from repro.experiments import pool
from repro.experiments.pool import SweepPoint, run_sweep
from repro.experiments.runner import DatabaseCache
from repro.storage.snapshot import SnapshotStore
from repro.workload.params import WorkloadParams

#: The scale the acceptance criterion names: 2,000 parents.
SCALE = 0.2


@pytest.fixture
def store_guard():
    """Restore the module-global store configuration after the test."""
    previous = pool.DB_STORE_ROOT
    yield
    pool.configure_db_store(previous)


def _point(params, strategy, **kwargs):
    kwargs.setdefault("db_procedural", strategy.startswith("PROC"))
    kwargs.setdefault("num_retrieves", 3)
    return SweepPoint(params=params, strategy=strategy, traced=True, **kwargs)


class TestDigestEquality:
    """Fresh build and snapshot attach are bit-identical, per strategy."""

    @pytest.mark.parametrize("strategy", sorted(REGISTRY))
    def test_attach_replays_fresh_build_exactly(self, strategy, tmp_path):
        params = WorkloadParams().scaled(SCALE)
        point = _point(params, strategy)
        fresh = pool.execute_point(point, DatabaseCache())
        # Cold: miss -> build -> freeze -> attach;  warm: disk hit -> attach.
        cold = pool.execute_point(
            point, DatabaseCache(store=SnapshotStore(str(tmp_path)))
        )
        warm = pool.execute_point(
            point, DatabaseCache(store=SnapshotStore(str(tmp_path)))
        )
        assert cold["traced"]["digest"] == fresh["traced"]["digest"]
        assert warm["traced"]["digest"] == fresh["traced"]["digest"]
        assert cold == fresh
        assert warm == fresh

    @pytest.mark.parametrize("strategy", ["BFS", "DFSCACHE", "PROC-CACHE-OIDS"])
    def test_every_attach_path_agrees(self, strategy, tmp_path):
        """Fresh build, legacy-pickle attach and arena attach: one digest."""
        params = WorkloadParams().scaled(SCALE)
        point = _point(params, strategy)
        fresh = pool.execute_point(point, DatabaseCache())
        results = {}
        for fmt in ("pickle", "arena"):
            root = str(tmp_path / fmt)
            # Populate, then re-open so the point really attaches from disk.
            pool.execute_point(
                point, DatabaseCache(store=SnapshotStore(root, format=fmt))
            )
            warm = DatabaseCache(store=SnapshotStore(root, format=fmt))
            results[fmt] = pool.execute_point(point, warm)
            assert warm.builds == 0
            assert (warm.arena_attaches, warm.pickle_attaches) == (
                (1, 0) if fmt == "arena" else (0, 1)
            )
        for fmt, result in results.items():
            assert result["traced"]["digest"] == fresh["traced"]["digest"], fmt
            assert result == fresh, fmt


class TestDatabaseCacheWithStore:
    def test_miss_builds_then_hit_attaches(self, tiny_params, tmp_path):
        store = SnapshotStore(str(tmp_path))
        cold = DatabaseCache(store=store)
        cold.get(tiny_params)
        assert (cold.builds, cold.attaches) == (1, 1)

        warm = DatabaseCache(store=SnapshotStore(str(tmp_path)))
        warm.get(tiny_params)
        assert (warm.builds, warm.attaches) == (0, 1)
        assert warm.store.stats["disk_hits"] == 1

    def test_every_get_attaches_a_fresh_clone(self, tiny_params, tmp_path):
        """Snapshot mode hands out pristine state per point.

        History independence — no point ever sees another point's
        mutations — is what makes retried/re-dispatched/resumed points
        replay bit-identically under fault injection.
        """
        cache = DatabaseCache(store=SnapshotStore(str(tmp_path)))
        first = cache.get(tiny_params)
        second = cache.get(tiny_params)
        assert second is not first
        assert cache.attaches == 2
        # ...but the expensive work happened exactly once.
        assert cache.builds == 1
        assert cache.store.stats["puts"] == 1

    def test_stats_snapshot_merges_store_counters(self, tiny_params, tmp_path):
        cache = DatabaseCache(store=SnapshotStore(str(tmp_path)))
        cache.get(tiny_params)
        stats = cache.stats_snapshot()
        assert stats["builds"] == 1
        assert stats["puts"] == 1
        assert stats["build_seconds"] > 0
        assert stats["attach_seconds"] > 0

    def test_deep_databases_go_through_the_store(self, tmp_path):
        from repro.workload.deepgen import DeepParams

        params = DeepParams(num_roots=40, depth=2, use_factor=3, buffer_pages=20)
        cold = DatabaseCache(store=SnapshotStore(str(tmp_path)))
        cold.get_deep(params)
        assert (cold.builds, cold.attaches) == (1, 1)
        warm = DatabaseCache(store=SnapshotStore(str(tmp_path)))
        warm.get_deep(params)
        assert (warm.builds, warm.attaches) == (0, 1)


class TestSweepTelemetry:
    def test_serial_sweep_records_build_attach_split(
        self, tiny_params, tmp_path, store_guard
    ):
        pool.configure_db_store(str(tmp_path / "dbcache"))
        run_sweep([_point(tiny_params, "BFS")])
        entry = pool.SWEEP_LOG[-1]
        assert entry["db"]["builds"] == 1
        assert entry["db"]["attaches"] == 1
        assert entry["db"]["attach_seconds"] >= 0

    def test_second_sweep_attaches_without_building(
        self, tiny_params, tmp_path, store_guard
    ):
        pool.configure_db_store(str(tmp_path / "dbcache"))
        run_sweep([_point(tiny_params, "BFS")])
        run_sweep([_point(tiny_params, "BFS", num_retrieves=4)])
        entry = pool.SWEEP_LOG[-1]
        assert entry["db"]["builds"] == 0
        assert entry["db"]["attaches"] == 1
        assert entry["db"]["memory_hits"] + entry["db"]["disk_hits"] == 1

    def test_arena_attaches_pickle_zero_payload_bytes(
        self, tiny_params, tmp_path, store_guard
    ):
        """The zero-copy contract, end to end through the sweep engine:

        a warm arena-backed sweep attaches from the arena only and no
        page payload byte goes through pickle anywhere in the interval.
        """
        pool.configure_db_store(str(tmp_path / "dbcache"))
        run_sweep([_point(tiny_params, "BFS")])
        run_sweep([_point(tiny_params, "BFS", num_retrieves=4)])
        entry = pool.SWEEP_LOG[-1]
        assert entry["db"]["arena_attaches"] == 1
        assert entry["db"]["pickle_attaches"] == 0
        assert entry["db"]["page_payload_pickle_bytes"] == 0


class TestSharedStoreAcrossWorkers:
    def _points(self, params):
        # Measured reports are invariant to database reuse (the engine's
        # determinism contract), so the store-backed parallel run and the
        # store-less serial run compare exactly.  Traces are not compared
        # across that boundary: store-less points reuse mutated databases,
        # so their unmeasured reset-flush events depend on what ran before
        # (snapshot-mode points always attach pristine clones and don't).
        return [
            SweepPoint(
                params=params.replace(num_top=num_top),
                strategy=strategy,
                num_retrieves=3,
            )
            for num_top in (2, 10)
            for strategy in ("DFS", "BFS", "DFSCACHE")
        ]

    def test_jobs2_matches_serial_and_populates_one_store(
        self, tiny_params, tmp_path, store_guard
    ):
        root = str(tmp_path / "dbcache")
        pool.configure_db_store(root)
        parallel = run_sweep(self._points(tiny_params), jobs=2)
        parallel_entry = pool.SWEEP_LOG[-1]

        pool.configure_db_store(None)
        serial = run_sweep(self._points(tiny_params), jobs=1)
        assert [dataclasses.asdict(r) for r in parallel] == [
            dataclasses.asdict(r) for r in serial
        ]
        # Both workers fed the one on-disk store (2 shapes: plain, cached).
        assert len(SnapshotStore(root).entries()) == 2
        assert parallel_entry["db"]["attaches"] >= 2

    def test_warm_store_spares_workers_every_build(
        self, tiny_params, tmp_path, store_guard
    ):
        pool.configure_db_store(str(tmp_path / "dbcache"))
        run_sweep(self._points(tiny_params), jobs=2)
        run_sweep(
            [
                dataclasses.replace(p, num_retrieves=4)
                for p in self._points(tiny_params)
            ],
            jobs=2,
        )
        entry = pool.SWEEP_LOG[-1]
        assert entry["db"]["builds"] == 0
        assert entry["db"]["disk_hits"] + entry["db"]["memory_hits"] > 0
