"""The sweep engine: determinism, parallel fan-out, and the point cache."""

import dataclasses

import pytest

from repro.experiments import pool
from repro.experiments.pool import PointCache, SweepPoint, point_key, run_sweep
from repro.experiments.runner import DatabaseCache
from repro.workload.params import WorkloadParams


@pytest.fixture
def params(tiny_params):
    return tiny_params


def _point(params, strategy="BFS", **kwargs):
    return SweepPoint(params=params, strategy=strategy, num_retrieves=4, **kwargs)


class TestDeterminism:
    def test_same_point_twice_through_one_database_cache(self, params):
        """Re-running a point against a reused database is bit-identical.

        This guards the driver's reset contract: run_sequence(reset=True)
        must leave no state behind that could shift a later measurement.
        """
        db_cache = DatabaseCache()
        first = pool.execute_point(_point(params), db_cache)
        second = pool.execute_point(_point(params), db_cache)
        assert first == second

    def test_reused_database_matches_fresh_database(self, params):
        point = _point(params, strategy="DFSCACHE")
        shared = DatabaseCache()
        pool.execute_point(_point(params, strategy="DFSCACHE"), shared)
        reused = pool.execute_point(point, shared)
        fresh = pool.execute_point(point, DatabaseCache())
        assert reused == fresh

    def test_parallel_run_matches_serial(self, params):
        points = [
            _point(params.replace(num_top=num_top), strategy)
            for num_top in (2, 10)
            for strategy in ("DFS", "BFS", "DFSCACHE")
        ]
        serial = run_sweep(points, jobs=1)
        parallel = run_sweep(points, jobs=2)
        assert [dataclasses.asdict(r) for r in serial] == [
            dataclasses.asdict(r) for r in parallel
        ]

    def test_bounded_worker_cache_does_not_change_results(self, params):
        point = _point(params)
        unbounded = pool.execute_point(point, DatabaseCache())
        bounded = pool.execute_point(point, DatabaseCache(max_entries=1))
        assert unbounded == bounded


class TestRunSweep:
    def test_results_in_input_order(self, params):
        points = [
            _point(params.replace(num_top=num_top), name)
            for num_top in (10, 2)
            for name in ("DFS", "BFS")
        ]
        reports = run_sweep(points)
        assert [r.strategy for r in reports] == ["DFS", "BFS", "DFS", "BFS"]
        # Spot-check against direct execution of one mid-list point.
        direct = pool._payload_to_result(pool.execute_point(points[2]))
        assert dataclasses.asdict(reports[2]) == dataclasses.asdict(direct)

    def test_deep_points_return_floats(self):
        from repro.workload.deepgen import DeepParams

        base = DeepParams(num_roots=60, depth=2, use_factor=3, buffer_pages=20)
        points = [
            SweepPoint(
                kind="deep",
                deep_params=base,
                depth=depth,
                span=3,
                queries=2,
                runner=runner,
            )
            for depth in (1, 2)
            for runner in ("dfs", "bfs", "nodup")
        ]
        results = run_sweep(points)
        assert len(results) == 6
        assert all(isinstance(value, float) for value in results)

    def test_sweep_log_records_telemetry(self, params):
        before = len(pool.SWEEP_LOG)
        run_sweep([_point(params)])
        entry = pool.SWEEP_LOG[-1]
        assert len(pool.SWEEP_LOG) == before + 1
        assert entry["points"] == 1
        assert entry["executed"] == 1
        assert entry["cache_hits"] == 0
        assert entry["seconds"] >= 0


class TestPointKey:
    def test_stable_across_equal_points(self, params):
        assert point_key(_point(params)) == point_key(_point(params))

    def test_sensitive_to_every_option(self, params):
        base = _point(params)
        variants = [
            _point(params, strategy="DFS"),
            _point(params.replace(num_top=3)),
            SweepPoint(params=params, strategy="BFS", num_retrieves=5),
            _point(params, cold_retrieves=True),
            _point(params, warmup=2),
            _point(params, db_cache=True),
            _point(params, strategy_kwargs=(("threshold", 7),)),
        ]
        keys = {point_key(p) for p in variants}
        assert point_key(base) not in keys
        assert len(keys) == len(variants)


class TestPointCache:
    def test_second_run_is_all_hits_and_identical(self, params, tmp_path):
        points = [_point(params, name) for name in ("DFS", "BFS")]
        cache = PointCache(str(tmp_path))
        cold = run_sweep(points, cache=cache)
        assert (cache.hits, cache.stores) == (0, 2)

        warm_cache = PointCache(str(tmp_path))
        assert len(warm_cache) == 2
        warm = run_sweep(points, cache=warm_cache)
        assert warm_cache.hits == 2
        assert [dataclasses.asdict(r) for r in cold] == [
            dataclasses.asdict(r) for r in warm
        ]

    def test_torn_entry_is_quarantined_on_load(self, params, tmp_path):
        """A truncated entry fails verification and reads as a miss."""
        import os

        cache = PointCache(str(tmp_path))
        run_sweep([_point(params)], cache=cache)
        with open(os.path.join(cache.dir, "torn-entry.json"), "w") as handle:
            handle.write('{"key": "truncated-entr')
        reloaded = PointCache(str(tmp_path))
        assert len(reloaded) == 1
        assert reloaded.corrupt == 1
        # The torn file was moved aside, not deleted.
        assert any(
            name.endswith(".corrupt") for name in os.listdir(reloaded.dir)
        )

    def test_cache_files_are_per_fingerprint(self, tmp_path, monkeypatch):
        cache = PointCache(str(tmp_path))
        assert cache.fingerprint[:16] in cache.dir


class TestTracedPoints:
    def test_traced_point_carries_validated_summary(self, params):
        report = run_sweep([_point(params, traced=True)])[0]
        assert report.traced is not None
        measured = report.traced["measured"]
        assert measured["retrieve_io"] + measured["update_io"] == report.total_io
        assert measured["par_cost"] == report.par_cost
        assert measured["child_cost"] == report.child_cost

    def test_traced_serial_matches_parallel(self, params):
        """Same event stream (digest included) from serial and pooled runs."""
        points = [
            _point(params, strategy, traced=True)
            for strategy in ("DFS", "BFS", "DFSCACHE")
        ]
        serial = run_sweep(points, jobs=1)
        parallel = run_sweep(points, jobs=2)
        for a, b in zip(serial, parallel):
            assert a.traced == b.traced
            assert a.traced["digest"] == b.traced["digest"]
        assert [dataclasses.asdict(r) for r in serial] == [
            dataclasses.asdict(r) for r in parallel
        ]

    def test_warm_point_cache_replays_identical_trace(self, params, tmp_path):
        point = _point(params, "BFS", traced=True)
        cold = run_sweep([point], cache=PointCache(str(tmp_path)))[0]
        warm_cache = PointCache(str(tmp_path))
        warm = run_sweep([point], cache=warm_cache)[0]
        assert warm_cache.hits == 1
        assert warm.traced == cold.traced
        assert dataclasses.asdict(warm) == dataclasses.asdict(cold)

    def test_traced_flag_changes_point_key(self, params):
        assert point_key(_point(params)) != point_key(_point(params, traced=True))


class TestCounterIsolation:
    """Pooled workers reuse processes: nothing may leak between points."""

    def test_buffer_stats_do_not_leak_across_points(self, params):
        """A point's buffer delta is identical however many ran before it.

        The driver measures PoolStats as a snapshot delta, so the live
        counters of a reused database can keep running without polluting
        any later point's report.
        """
        db_cache = DatabaseCache()
        first = pool.execute_point(_point(params, "DFSCACHE"), db_cache)
        for _ in range(2):  # churn the same pooled database
            pool.execute_point(_point(params, "DFSCACHE"), db_cache)
        again = pool.execute_point(_point(params, "DFSCACHE"), db_cache)
        fresh = pool.execute_point(_point(params, "DFSCACHE"), DatabaseCache())
        assert first["buffer_stats"] == again["buffer_stats"]
        assert first["buffer_stats"] == fresh["buffer_stats"]

    def test_traced_registry_is_per_point(self, params):
        """Back-to-back traced points in one process stay independent."""
        db_cache = DatabaseCache()
        first = pool.execute_point(_point(params, traced=True), db_cache)
        second = pool.execute_point(_point(params, traced=True), db_cache)
        assert first["traced"] == second["traced"]

    def test_sweep_log_aggregates_buffer_and_io(self, params):
        run_sweep([_point(params)])
        entry = pool.SWEEP_LOG[-1]
        assert entry["reports"] == 1
        assert entry["io"]["retrieve"] > 0
        accesses = entry["buffer"]["hits"] + entry["buffer"]["misses"]
        assert accesses > 0


class TestScheduler:
    """Cost-aware dispatch: heaviest shape first, costliest point first."""

    def test_resolve_jobs(self, monkeypatch):
        assert pool.resolve_jobs(3) == 3
        assert pool.resolve_jobs("3") == 3
        monkeypatch.setattr(pool.os, "cpu_count", lambda: 8)
        assert pool.resolve_jobs("auto") == 8
        assert pool.resolve_jobs(None) == 8
        monkeypatch.setattr(pool.os, "cpu_count", lambda: None)
        assert pool.resolve_jobs("auto") == 1
        with pytest.raises(ValueError):
            pool.resolve_jobs(0)
        with pytest.raises(ValueError):
            pool.resolve_jobs("zero")

    def test_cost_scales_with_work(self, params):
        cheap = _point(params.replace(num_top=2))
        costly = _point(params.replace(num_top=10))
        assert pool._cost_estimate(costly) > pool._cost_estimate(cheap)

    def test_order_puts_costly_points_of_one_shape_first(self, params):
        points = [
            _point(params.replace(num_top=num_top), strategy)
            for strategy in ("BFS", "DFS")
            for num_top in (2, 10)
        ]
        order = pool._dispatch_order(points, list(range(len(points))))
        assert sorted(order) == list(range(len(points)))
        # All points share one database shape, so the order is purely
        # longest-first within the single group.
        costs = [pool._cost_estimate(points[i]) for i in order]
        assert costs == sorted(costs, reverse=True)

    def test_order_groups_shapes_and_is_deterministic(self, params):
        points = [
            _point(params, "BFS"),
            _point(params, "DFSCACHE"),  # cached shape
            _point(params, "DFS"),
            _point(params.replace(num_top=10), "DFSCACHE"),
        ]
        pending = list(range(len(points)))
        order = pool._dispatch_order(points, pending)
        assert order == pool._dispatch_order(points, pending)  # stable
        keys = [pool._dispatch_key(points[i]) for i in order]
        # Points of the same shape are dispatched back to back, so the
        # pool builds each database once, as early as possible.
        seen = []
        for key in keys:
            if key not in seen:
                seen.append(key)
        assert len(seen) == 2
        assert keys == sorted(keys, key=seen.index)
