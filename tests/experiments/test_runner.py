"""Experiment machinery: adaptive query counts, database cache, results."""

import pytest

from repro.experiments.runner import (
    DatabaseCache,
    ExperimentResult,
    adaptive_queries,
    run_point,
    scaled_num_tops,
)
from repro.workload.params import WorkloadParams


class TestAdaptiveQueries:
    def test_explicit_request_wins(self):
        assert adaptive_queries(10000, requested=3) == 3

    def test_small_num_top_gets_many_queries(self):
        assert adaptive_queries(1) == 200

    def test_large_num_top_gets_few(self):
        assert adaptive_queries(10000) == 5

    def test_monotone_nonincreasing(self):
        counts = [adaptive_queries(n) for n in (1, 10, 100, 1000, 10000)]
        assert counts == sorted(counts, reverse=True)


class TestScaledNumTops:
    def test_fractions_and_dedup(self):
        params = WorkloadParams(num_parents=1000)
        tops = scaled_num_tops(params, [0.0001, 0.001, 0.002, 1.0])
        assert tops == [1, 2, 1000]  # 0.0001 and 0.001 both round to 1

    def test_clamped_to_parents(self):
        params = WorkloadParams(num_parents=100, num_top=1)
        assert scaled_num_tops(params, [5.0]) == [100]


class TestDatabaseCache:
    def test_reuses_same_shape(self, tiny_params):
        cache = DatabaseCache()
        a = cache.get(tiny_params)
        b = cache.get(tiny_params.replace(num_top=3))  # num_top is not shape
        assert a is b

    def test_distinguishes_shape_changes(self, tiny_params):
        cache = DatabaseCache()
        a = cache.get(tiny_params)
        b = cache.get(tiny_params.replace(use_factor=2))
        assert a is not b

    def test_distinguishes_facilities(self, tiny_params):
        cache = DatabaseCache()
        plain = cache.get(tiny_params)
        clustered = cache.get(tiny_params, clustering=True)
        assert plain is not clustered
        assert clustered.cluster is not None

    def test_clear(self, tiny_params):
        cache = DatabaseCache()
        a = cache.get(tiny_params)
        cache.clear()
        assert cache.get(tiny_params) is not a

    def test_bounded_cache_evicts_least_recently_used(self, tiny_params):
        cache = DatabaseCache(max_entries=2)
        a = cache.get(tiny_params)
        cache.get(tiny_params.replace(use_factor=2))
        assert cache.get(tiny_params) is a  # refreshes a's recency
        cache.get(tiny_params.replace(use_factor=3))  # evicts use_factor=2
        assert len(cache) == 2
        assert cache.get(tiny_params) is a

    def test_get_deep_reuses_database(self):
        from repro.workload.deepgen import DeepParams

        cache = DatabaseCache()
        base = DeepParams(num_roots=40, depth=2, use_factor=3)
        assert cache.get_deep(base) is cache.get_deep(base)


class TestRunPoint:
    def test_runs_any_registered_strategy(self, tiny_params):
        cache = DatabaseCache()
        for name in ("DFS", "BFS", "DFSCACHE", "DFSCLUST"):
            report = run_point(tiny_params, name, cache, num_retrieves=3)
            assert report.num_retrieves == 3

    def test_inside_cache_strategy_supported(self, tiny_params):
        report = run_point(tiny_params, "DFSCACHE-INSIDE", num_retrieves=3)
        assert report.strategy == "DFSCACHE-INSIDE"


class TestExperimentResult:
    def make(self):
        return ExperimentResult(
            name="x",
            title="T",
            headers=["a", "b"],
            rows=[[1, 2], [3, 4]],
            notes=["n"],
        )

    def test_table_renders(self):
        text = self.make().table()
        assert "T" in text
        assert "note: n" in text

    def test_column(self):
        assert self.make().column("b") == [2, 4]

    def test_as_dicts(self):
        assert self.make().as_dicts()[0] == {"a": 1, "b": 2}


class TestJsonExport:
    def make(self):
        return ExperimentResult(
            name="x",
            title="T",
            headers=["a", "b"],
            rows=[[1, 2.5], [3, "z"]],
            notes=["n"],
        )

    def test_to_json_roundtrip(self):
        import json

        payload = json.loads(self.make().to_json())
        assert payload == {
            "name": "x",
            "title": "T",
            "headers": ["a", "b"],
            "rows": [[1, 2.5], [3, "z"]],
            "notes": ["n"],
        }

    def test_write_json(self, tmp_path):
        import json

        path = tmp_path / "out.json"
        self.make().write_json(str(path))
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text)["name"] == "x"


class TestCsvExport:
    def test_to_csv_roundtrip(self):
        result = ExperimentResult(
            name="x", title="t", headers=["a", "b"], rows=[[1, 2.5], [3, "z"]]
        )
        lines = result.to_csv().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2.5"
        assert lines[2] == "3,z"

    def test_write_csv(self, tmp_path):
        result = ExperimentResult(
            name="x", title="t", headers=["a"], rows=[[1]]
        )
        path = tmp_path / "out.csv"
        result.write_csv(str(path))
        assert path.read_text().splitlines() == ["a", "1"]
