"""The report runner."""

import os

import pytest

from repro.experiments import report


class TestSuite:
    def test_covers_every_figure_and_claim(self):
        names = [name for name, _ in report.experiment_suite(scale=0.1)]
        for expected in (
            "fig3",
            "fig4",
            "fig5",
            "fig7",
            "sec62",
            "smart",
            "deep",
            "matrix",
            "opt",
            "ablation_cache_size",
            "ablation_buffer",
            "ablation_inside_outside",
            "ablation_buffer_policy",
        ):
            assert expected in names

    def test_annotate_adds_headlines(self):
        from repro.experiments.runner import ExperimentResult

        result = ExperimentResult(
            name="fig3",
            title="t",
            headers=["NumTop", "DFS", "BFS", "BFSNODUP"],
            rows=[[1, 5.0, 7.0, 8.0], [100, 50.0, 20.0, 21.0]],
        )
        text = report.annotate("fig3", result)
        assert "BFS overtakes DFS" in text


class TestMain:
    def test_writes_requested_outputs(self, tmp_path, capsys):
        code = report.main(
            [
                "--scale",
                "0.05",
                "--out",
                str(tmp_path),
                "--only",
                "ablation_buffer_policy",
            ]
        )
        assert code == 0
        written = os.listdir(tmp_path)
        assert written == ["ablation_buffer_policy.txt"]
        out = capsys.readouterr().out
        assert "A4" in out
        assert "total:" in out
