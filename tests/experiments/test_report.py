"""The report runner."""

import json
import os

import pytest

from repro.experiments import report


class TestSuite:
    def test_covers_every_figure_and_claim(self):
        names = [name for name, _ in report.experiment_suite(scale=0.1)]
        for expected in (
            "fig3",
            "fig4",
            "fig5",
            "fig7",
            "sec62",
            "smart",
            "deep",
            "matrix",
            "opt",
            "ablation_cache_size",
            "ablation_buffer",
            "ablation_inside_outside",
            "ablation_buffer_policy",
        ):
            assert expected in names

    def test_annotate_adds_headlines(self):
        from repro.experiments.runner import ExperimentResult

        result = ExperimentResult(
            name="fig3",
            title="t",
            headers=["NumTop", "DFS", "BFS", "BFSNODUP"],
            rows=[[1, 5.0, 7.0, 8.0], [100, 50.0, 20.0, 21.0]],
        )
        text = report.annotate("fig3", result)
        assert "BFS overtakes DFS" in text


class TestMain:
    def test_writes_requested_outputs(self, tmp_path, capsys):
        bench = tmp_path / "bench.json"
        code = report.main(
            [
                "--scale",
                "0.05",
                "--out",
                str(tmp_path / "out"),
                "--only",
                "ablation_buffer_policy",
                "--bench-out",
                str(bench),
            ]
        )
        assert code == 0
        written = sorted(os.listdir(tmp_path / "out"))
        assert written == [
            ".dbcache",
            ".pointcache",
            "ablation_buffer_policy.json",
            "ablation_buffer_policy.txt",
            "ledger.jsonl",
        ]
        out = capsys.readouterr().out
        assert "A4" in out
        assert "total:" in out
        # Every report run appends one ledger record with span rollups.
        from repro.obs.ledger import RunLedger

        (record,) = RunLedger(str(tmp_path / "out" / "ledger.jsonl")).read()
        assert record["kind"] == "report"
        assert record["scale"] == 0.05
        assert record["spans"]
        # Telemetry: one entry per experiment, with point counts.
        payload = json.loads(bench.read_text())
        assert payload["jobs"] == 1
        assert payload["db_cache"] is True
        (entry,) = payload["experiments"]
        assert entry["name"] == "ablation_buffer_policy"
        assert entry["points"] == entry["executed"] + entry["cache_hits"]
        assert entry["points"] > 0
        # The snapshot store saw every shape: builds happened exactly once
        # per shape and the store holds their pickles.
        assert entry["db"]["builds"] > 0
        assert entry["db"]["attaches"] >= entry["db"]["builds"]
        assert payload["db"]["builds"] == entry["db"]["builds"]
        assert payload["db_bytes_on_disk"] > 0

    def test_point_cache_memoizes_across_runs(self, tmp_path):
        argv = [
            "--scale",
            "0.05",
            "--out",
            str(tmp_path / "out"),
            "--only",
            "ablation_buffer_policy",
            "--bench-out",
        ]
        assert report.main(argv + [str(tmp_path / "cold.json")]) == 0
        assert report.main(argv + [str(tmp_path / "warm.json")]) == 0
        cold = json.loads((tmp_path / "cold.json").read_text())
        warm = json.loads((tmp_path / "warm.json").read_text())
        assert cold["experiments"][0]["cache_hits"] == 0
        assert warm["experiments"][0]["executed"] == 0
        assert (
            warm["experiments"][0]["cache_hits"]
            == cold["experiments"][0]["executed"]
        )

    def test_unknown_only_name_errors(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            report.main(
                [
                    "--out",
                    str(tmp_path),
                    "--bench-out",
                    "",
                    "--only",
                    "no_such_experiment",
                ]
            )
        assert excinfo.value.code == 2
