"""Shape assertions: each experiment, run at a small scale, must exhibit
the qualitative structure the paper reports.  These are the reproduction's
regression tests — if a storage or strategy change flips a conclusion,
they fail.
"""

import pytest

from repro.experiments import ablations, deep, fig3, fig4, fig5, fig7, matrix, opt, sec62, smart

SCALE = 0.08  # 800 parents: fast but structured


@pytest.fixture(scope="module")
def fig3_result():
    return fig3.run(scale=SCALE)


@pytest.fixture(scope="module")
def fig5_result():
    return fig5.run(scale=0.15, num_retrieves=6)


class TestFig3Shapes:
    def test_dfs_loses_at_high_num_top(self, fig3_result):
        last = fig3_result.rows[-1]  # largest NumTop
        dfs, bfs = last[1], last[2]
        assert dfs > 3 * bfs

    def test_bfs_slightly_worse_at_num_top_one(self, fig3_result):
        first = fig3_result.rows[0]
        assert first[0] == 1
        dfs, bfs = first[1], first[2]
        assert bfs > dfs  # BFS pays the temporary
        assert bfs < 4 * dfs  # ... but only slightly (same order)

    def test_crossover_exists_near_fifty(self, fig3_result):
        crossover = fig3.crossover_num_top(fig3_result)
        assert crossover is not None
        # Paper: "DFS is a loser when NumTop exceeds 50 or so" — accept a
        # generous band around it at reduced scale.
        assert crossover <= 100

    def test_bfsnodup_close_to_bfs(self, fig3_result):
        for row in fig3_result.rows:
            bfs, nodup = row[2], row[3]
            assert nodup == pytest.approx(bfs, rel=0.30, abs=4)


class TestFig5Shapes:
    def test_clust_parcost_rises_as_share_factor_falls(self, fig5_result):
        par = fig5_result.column("clust_ParCost")
        assert par[0] == max(par)  # ShareFactor=1 has the costliest scan
        assert par[0] > 1.5 * par[-1]

    def test_clust_childcost_zero_at_share_factor_one(self, fig5_result):
        child = fig5_result.column("clust_ChildCost")
        assert child[0] == 0
        assert all(c > 0 for c in child[1:])

    def test_bfs_parcost_flat(self, fig5_result):
        par = fig5_result.column("bfs_ParCost")
        assert max(par) - min(par) <= 0.3 * max(par)

    def test_bfs_childcost_falls_with_share_factor(self, fig5_result):
        child = fig5_result.column("bfs_ChildCost")
        assert child[0] > 2 * child[-1]

    def test_crossover_exists(self, fig5_result):
        assert fig5.crossover_share_factor(fig5_result) is not None

    def test_clustering_wins_outright_at_share_factor_one(self, fig5_result):
        row = fig5_result.rows[0]
        assert row[0] == 1
        assert row[3] < row[6]  # clust total < bfs total


class TestFig7Shapes:
    @pytest.fixture(scope="class")
    def result(self):
        return fig7.run(scale=0.15, num_retrieves=6)

    def test_overlap_five_curve_above_overlap_one(self, result):
        worse = 0
        for row in result.rows:
            if row[2] > row[1]:
                worse += 1
        assert worse >= len(result.rows) - 1  # allow one noisy point

    def test_crossover_moves_left_with_overlap(self, result):
        def first_ratio_above_one(col):
            for row in result.rows:
                if row[col] > 1.0:
                    return row[0]
            return None

        low_overlap = first_ratio_above_one(1)
        high_overlap = first_ratio_above_one(2)
        assert high_overlap is not None
        if low_overlap is not None:
            assert high_overlap <= low_overlap

    def test_clustering_degrades_with_num_top(self, result):
        ratios = result.column("overlap=5,use=1")
        assert ratios[-1] > ratios[0]


class TestFig4Shapes:
    @pytest.fixture(scope="class")
    def result(self):
        return fig4.run(
            scale=SCALE,
            coarse=True,
            num_top_fractions=(0.0025, 0.025, 0.5),
            pr_updates=(0.0, 0.9),
            use_factors=(1, 5, 25),
        )

    def test_dfsclust_owns_share_factor_one(self, result):
        for row in fig4.winner_at(result, share_factor=1):
            assert row[-1] == "DFSCLUST", row

    def test_bfs_wins_high_num_top_high_sharing(self, result):
        num_tops = sorted({row[1] for row in result.rows})
        for row in fig4.winner_at(result, share_factor=25, num_top=num_tops[-1]):
            assert row[-1] == "BFS", row

    def test_caching_only_competitive_at_low_update_rates(self, result):
        # Wherever DFSCACHE wins, Pr(UPDATE) is low.
        for row in result.rows:
            if row[-1] == "DFSCACHE":
                assert row[2] <= 0.5, row

    def test_all_three_regions_nonempty_enough(self, result):
        counts = fig4.region_counts(result)
        assert counts["BFS"] > 0
        assert counts["DFSCLUST"] > 0


class TestSec62Shapes:
    @pytest.fixture(scope="class")
    def result(self):
        # Needs enough data that a 20-way split of ChildRel does not
        # collapse each piece into the buffer pool (a scale artifact that
        # makes DFS *improve* with NumChildRel).
        return sec62.run(scale=0.2)

    def test_dfs_family_flat(self, result):
        assert sec62.max_relative_spread(result, "DFS") < 0.35
        assert sec62.max_relative_spread(result, "DFSCACHE") < 0.35

    def test_bfs_degrades_only_near_num_top(self, result):
        bfs = result.column("BFS")
        # Monotone-ish growth, with the largest NumChildRel the worst.
        assert bfs[-1] == max(bfs)
        assert bfs[-1] > bfs[0]


class TestSmartShapes:
    @pytest.fixture(scope="class")
    def result(self):
        return smart.run(scale=SCALE)

    def test_smart_beats_bfs_at_low_update_rates(self, result):
        row = result.rows[0]  # Pr(UPDATE) = 0
        pr, bfs, dfscache, smart_cost = row
        assert smart_cost < bfs

    def test_smart_beats_dfscache_on_the_mix(self, result):
        for row in result.rows:
            assert row[3] <= row[2] * 1.05

    def test_smart_degrades_with_updates(self, result):
        smart_costs = result.column("SMART")
        assert smart_costs[-1] > smart_costs[0]


class TestAblationShapes:
    def test_cache_size_monotone_benefit(self):
        result = ablations.run_cache_size(scale=SCALE)
        costs = result.column("DFSCACHE")
        hit_rates = result.column("hit_rate")
        assert costs[-1] < costs[0]  # bigger cache, cheaper queries
        assert hit_rates[-1] > hit_rates[0]

    def test_buffer_size_helps_but_preserves_order(self):
        result = ablations.run_buffer_size(scale=SCALE)
        dfs = result.column("DFS")
        bfs = result.column("BFS")
        assert dfs[-1] < dfs[0]
        for d, b in zip(dfs, bfs):
            assert b < d  # BFS stays the winner at this NumTop

    def test_outside_beats_inside_when_shared(self):
        result = ablations.run_inside_outside(scale=SCALE)
        for row in result.rows:
            use_factor, outside, inside = row
            if use_factor >= 5:
                assert outside < inside, row


class TestDeepShapes:
    @pytest.fixture(scope="class")
    def result(self):
        return deep.run(scale=0.1, span=12)

    def test_dfs_grows_with_depth(self, result):
        dfs = result.column("DFS")
        assert dfs == sorted(dfs)

    def test_iteration_wins_deep(self, result):
        last = result.rows[-1]
        assert last[1] > 2 * last[2]  # DFS > 2x BFS at max depth

    def test_nodup_gain_marginal_but_nondecreasing(self, result):
        gains = result.column("nodup_gain")
        assert gains[-1] >= gains[0]
        assert gains[-1] < 0.2


class TestMatrixShapes:
    @pytest.fixture(scope="class")
    def result(self):
        return matrix.run(scale=0.2)

    def test_procedural_column_ordering(self, result):
        pr0 = dict(zip(result.headers[1:], result.rows[0][1:]))
        assert pr0["PROC-CACHE-VALUES"] < pr0["PROC-CACHE-OIDS"] < pr0["PROC-EXEC"]

    def test_oid_column_beats_procedural_uncached(self, result):
        pr0 = dict(zip(result.headers[1:], result.rows[0][1:]))
        assert pr0["BFS"] < pr0["PROC-EXEC"]

    def test_updates_erode_caching_not_exec(self, result):
        pr0 = dict(zip(result.headers[1:], result.rows[0][1:]))
        hi = dict(zip(result.headers[1:], result.rows[-1][1:]))
        assert hi["PROC-EXEC"] - pr0["PROC-EXEC"] < (
            hi["PROC-CACHE-VALUES"] - pr0["PROC-CACHE-VALUES"]
        )


class TestOptShapes:
    @pytest.fixture(scope="class")
    def result(self):
        return opt.run(scale=0.1)

    def test_regret_negligible(self, result):
        assert opt.max_regret(result) <= 0.25

    def test_picks_dfs_small_bfs_large(self, result):
        first, last = result.rows[0], result.rows[-1]
        assert first[3] <= first[2]  # OPT <= BFS at NumTop=1
        assert last[3] <= 0.5 * last[1]  # OPT << DFS at the top end


class TestBufferPolicyAblationShapes:
    @pytest.fixture(scope="class")
    def result(self):
        return ablations.run_buffer_policy(scale=SCALE)

    def test_ordering_stable_across_policies(self, result):
        for policy, dfs, bfs, clust in result.rows:
            assert bfs < dfs, policy

    def test_policies_within_band(self, result):
        by_policy = {row[0]: row[1:] for row in result.rows}
        for lru_cost, clock_cost in zip(by_policy["lru"], by_policy["clock"]):
            assert abs(lru_cost - clock_cost) <= 0.5 * max(lru_cost, clock_cost)
