"""Figure 4 analysis helpers (region counts, face projections)."""

import pytest

from repro.experiments.fig4 import (
    STRATEGIES,
    face_summary,
    region_counts,
    winner_at,
)
from repro.experiments.runner import ExperimentResult


@pytest.fixture
def synthetic_result():
    """A hand-built grid with known winners."""
    headers = ["ShareFactor", "NumTop", "Pr(UPDATE)", "BFS", "DFSCACHE",
               "DFSCLUST", "best"]
    rows = [
        [1, 1, 0.0, 10, 9, 2, "DFSCLUST"],
        [1, 1, 0.9, 12, 15, 3, "DFSCLUST"],
        [1, 100, 0.0, 50, 80, 9, "DFSCLUST"],
        [1, 100, 0.9, 55, 90, 10, "DFSCLUST"],
        [25, 1, 0.0, 8, 3, 4, "DFSCACHE"],
        [25, 1, 0.9, 9, 12, 6, "DFSCLUST"],
        [25, 100, 0.0, 20, 35, 60, "BFS"],
        [25, 100, 0.9, 22, 70, 65, "BFS"],
    ]
    return ExperimentResult(name="fig4", title="t", headers=headers, rows=rows)


class TestRegionCounts:
    def test_counts_sum_to_grid(self, synthetic_result):
        counts = region_counts(synthetic_result)
        assert sum(counts.values()) == len(synthetic_result.rows)
        assert counts["DFSCLUST"] == 5
        assert counts["DFSCACHE"] == 1
        assert counts["BFS"] == 2


class TestWinnerAt:
    def test_filters_by_any_subset(self, synthetic_result):
        assert len(winner_at(synthetic_result, share_factor=1)) == 4
        assert len(winner_at(synthetic_result, share_factor=25, num_top=100)) == 2
        only = winner_at(
            synthetic_result, share_factor=25, num_top=1, pr_update=0.0
        )
        assert len(only) == 1
        assert only[0][-1] == "DFSCACHE"

    def test_no_filters_returns_everything(self, synthetic_result):
        assert len(winner_at(synthetic_result)) == 8


class TestFaceSummary:
    def test_faces_present_and_counted(self, synthetic_result):
        summary = face_summary(synthetic_result)
        assert set(summary) == {
            "back (Pr->1)",
            "front (Pr->0)",
            "top (max SF)",
            "back-left (NumTop->1)",
        }
        back = summary["back (Pr->1)"]
        assert sum(back.values()) == 4  # four rows at pr=0.9
        # Caching never wins on the back face of this grid.
        assert back["DFSCACHE"] == 0

    def test_front_face_contains_caching_win(self, synthetic_result):
        front = face_summary(synthetic_result)["front (Pr->0)"]
        assert front["DFSCACHE"] == 1

    def test_every_strategy_key_present(self, synthetic_result):
        for counts in face_summary(synthetic_result).values():
            assert set(counts) == set(STRATEGIES)
