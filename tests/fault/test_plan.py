"""The fault plan itself: schedules, determinism, parsing, effects."""

import pickle

import pytest

from repro.errors import FaultInjected
from repro.fault import plan as fault_plan
from repro.fault.plan import SITES, FaultPlan, FaultSpec, parse_faults


@pytest.fixture(autouse=True)
def no_active_plan():
    """Every test starts and ends with injection off."""
    fault_plan.clear()
    yield
    fault_plan.clear()


class TestFaultSpec:
    def test_unknown_site_is_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec("disk.explode")

    def test_rate_must_be_a_probability(self):
        with pytest.raises(ValueError, match="rate"):
            FaultSpec("disk.read", rate=1.5)

    def test_every_documented_site_is_constructible(self):
        for site in SITES:
            FaultSpec(site)


class TestFaultPlan:
    def test_count_bounds_firings(self):
        plan = FaultPlan([FaultSpec("disk.read", count=2)])
        fires = [plan.fire("disk.read") for _ in range(5)]
        assert fires == [True, True, False, False, False]
        assert plan.injections["disk.read"] == 2
        assert plan.opportunities["disk.read"] == 5

    def test_after_skips_leading_opportunities(self):
        plan = FaultPlan([FaultSpec("sweep.kill", after=3)])
        assert [plan.fire("sweep.kill") for _ in range(5)] == [
            False, False, False, True, False,
        ]

    def test_unscheduled_site_never_fires(self):
        plan = FaultPlan([FaultSpec("disk.read")])
        assert not any(plan.fire("disk.write") for _ in range(10))

    def test_same_seed_fires_at_the_same_opportunities(self):
        def schedule(seed):
            plan = FaultPlan(
                [FaultSpec("disk.read", rate=0.3, count=None)], seed=seed
            )
            return [plan.fire("disk.read") for _ in range(50)]

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)

    def test_duplicate_site_is_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FaultPlan([FaultSpec("disk.read"), FaultSpec("disk.read")])

    def test_pickle_roundtrip_restarts_the_schedule(self):
        plan = FaultPlan([FaultSpec("disk.read", count=1)], seed=3)
        assert plan.fire("disk.read")
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.seed == 3
        assert clone.injections["disk.read"] == 0
        assert clone.fire("disk.read")  # its own budget, not the parent's


class TestHit:
    def test_noop_without_a_plan(self):
        fault_plan.hit("disk.read")  # must not raise

    def test_scheduled_site_raises_fault_injected(self):
        fault_plan.install(FaultPlan([FaultSpec("disk.read")]))
        with pytest.raises(FaultInjected) as excinfo:
            fault_plan.hit("disk.read")
        assert excinfo.value.site == "disk.read"
        fault_plan.hit("disk.read")  # count=1: budget spent

    def test_worker_sites_are_suppressed_outside_workers(self, monkeypatch):
        # worker.crash fires os._exit — if the gate were broken this
        # test run would die, so assert via the injection counter.
        monkeypatch.setattr(fault_plan, "_IN_WORKER", False)
        plan = FaultPlan([FaultSpec("worker.crash")])
        fault_plan.install(plan)
        fault_plan.hit("worker.crash")
        assert plan.injections["worker.crash"] == 0


class TestCorruptBytes:
    def test_flips_one_byte_when_scheduled(self):
        fault_plan.install(FaultPlan([FaultSpec("snapshot.load")]))
        blob = b"x" * 64
        corrupted = fault_plan.corrupt_bytes("snapshot.load", blob)
        assert corrupted != blob
        assert len(corrupted) == len(blob)
        # Budget spent: the next load passes through untouched.
        assert fault_plan.corrupt_bytes("snapshot.load", blob) == blob

    def test_passthrough_without_a_plan(self):
        assert fault_plan.corrupt_bytes("snapshot.load", b"abc") == b"abc"


class TestParseFaults:
    def test_full_syntax(self):
        specs = parse_faults("disk.read=0.5x3@2,snapshot.load,sweep.kill=1x1@5")
        assert specs[0] == FaultSpec("disk.read", rate=0.5, count=3, after=2)
        assert specs[1] == FaultSpec("snapshot.load", rate=1.0, count=1)
        assert specs[2] == FaultSpec("sweep.kill", rate=1.0, count=1, after=5)

    def test_star_count_is_unbounded(self):
        (spec,) = parse_faults("disk.read=0.1x*")
        assert spec.count is None

    def test_empty_schedule_is_rejected(self):
        with pytest.raises(ValueError, match="empty fault schedule"):
            parse_faults(" , ")

    def test_unknown_site_propagates(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            parse_faults("disk.melt=1")
