"""Recovery machinery: retries, quarantine, cache self-healing, degradation.

The invariant under test everywhere: a fault changes *whether work is
redone*, never *what a measurement says*.  Faulted sweeps must produce
results equal to undisturbed ones, except for cells that exhaust their
retry budget — and those must surface as quarantined :class:`FailedPoint`
cells instead of sinking the sweep.
"""

import dataclasses
import math
import os
import time

import pytest

from repro.errors import SweepInterrupted
from repro.experiments import pool
from repro.experiments.pool import (
    FailedPoint,
    PointCache,
    RetryPolicy,
    SweepPoint,
    run_sweep,
)
from repro.fault import plan as fault_plan
from repro.fault.plan import FaultPlan, FaultSpec
from repro.storage.snapshot import SnapshotStore
from repro.workload.driver import CostReport

FAST = RetryPolicy(max_retries=2, backoff_seconds=0.001)


@pytest.fixture(autouse=True)
def no_active_plan():
    fault_plan.clear()
    yield
    fault_plan.clear()


def _points(params, n=2):
    return [
        SweepPoint(
            params=params.replace(num_top=num_top), strategy="BFS", num_retrieves=3
        )
        for num_top in (2, 5, 10, 20)[:n]
    ]


def _last_faults():
    return pool.SWEEP_LOG[-1]["faults"]


class TestRetry:
    def test_transient_fault_is_retried_to_an_identical_result(self, tiny_params):
        baseline = run_sweep(_points(tiny_params), policy=FAST)
        fault_plan.install(FaultPlan([FaultSpec("point.poison", count=1)]))
        faulted = run_sweep(_points(tiny_params), policy=FAST)
        assert [dataclasses.asdict(r) for r in faulted] == [
            dataclasses.asdict(r) for r in baseline
        ]
        faults = _last_faults()
        assert faults["injections"] == {"point.poison": 1}
        assert faults["retries"] == 1
        assert faults["quarantined"] == []

    def test_disk_fault_mid_measurement_is_retried(self, tiny_params):
        baseline = run_sweep(_points(tiny_params, n=1), policy=FAST)
        # Unlike point.poison (which fires before any work), a disk fault
        # interrupts a half-done measurement; the retry must still match.
        fault_plan.install(FaultPlan([FaultSpec("disk.read", count=1)]))
        faulted = run_sweep(_points(tiny_params, n=1), policy=FAST)
        assert dataclasses.asdict(faulted[0]) == dataclasses.asdict(baseline[0])
        assert _last_faults()["retries"] == 1

    def test_serial_deadline_counts_a_timeout_then_recovers(
        self, tiny_params, monkeypatch
    ):
        real = pool.execute_point
        calls = []

        def slow_once(point, db_cache=None):
            calls.append(point)
            if len(calls) == 1:
                time.sleep(0.5)
            return real(point, db_cache)

        monkeypatch.setattr(pool, "execute_point", slow_once)
        results = run_sweep(
            _points(tiny_params, n=1),
            policy=RetryPolicy(
                max_retries=2, backoff_seconds=0.001, point_timeout=0.1
            ),
        )
        assert isinstance(results[0], CostReport)
        faults = _last_faults()
        assert faults["timeouts"] == 1
        assert faults["retries"] == 1


class TestQuarantine:
    def test_retry_exhaustion_quarantines_without_sinking_the_sweep(
        self, tiny_params, tmp_path
    ):
        # Two poison firings, one-retry budget: the first point burns
        # both attempts and is quarantined; the second runs clean.
        fault_plan.install(FaultPlan([FaultSpec("point.poison", count=2)]))
        cache = PointCache(str(tmp_path / "pc"))
        points = _points(tiny_params, n=2)
        results = run_sweep(
            points,
            cache=cache,
            policy=RetryPolicy(max_retries=1, backoff_seconds=0.001),
        )
        assert isinstance(results[0], FailedPoint)
        assert results[0].attempts == 2
        assert isinstance(results[1], CostReport)
        faults = _last_faults()
        assert faults["quarantined"] == [pool.point_label(points[0])]
        assert faults["injections"] == {"point.poison": 2}

        # Degraded cells render as NaN instead of crashing table code...
        assert math.isnan(results[0].avg_io_per_retrieve)
        assert math.isnan(results[0].retrieve_io)
        # ...and are never checkpointed: a rerun retries them fresh.
        assert cache.stores == 1
        fault_plan.clear()
        rerun = run_sweep(points, cache=cache, policy=FAST)
        assert all(isinstance(r, CostReport) for r in rerun)
        assert cache.hits == 1

    def test_malformed_points_fail_immediately_without_retries(self, tiny_params):
        bad = SweepPoint(
            params=tiny_params, strategy="BFS", sequence="mixed", num_retrieves=3
        )  # mixed sequence without mix_num_tops: no retry can fix it
        results = run_sweep([bad], policy=FAST)
        assert isinstance(results[0], FailedPoint)
        assert _last_faults()["retries"] == 0


class TestPointCacheSelfHealing:
    def _seed_cache(self, tmp_path, params, n=2):
        cache = PointCache(str(tmp_path / "pc"))
        baseline = run_sweep(_points(params, n=n), cache=cache, policy=FAST)
        names = [
            name for name in os.listdir(cache.dir) if name.endswith(".json")
        ]
        assert len(names) == n
        return cache, baseline, names

    def test_bitflipped_entry_is_quarantined_and_rebuilt(
        self, tiny_params, tmp_path
    ):
        cache, baseline, names = self._seed_cache(tmp_path, tiny_params)
        victim = os.path.join(cache.dir, names[0])
        blob = bytearray(open(victim, "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        open(victim, "wb").write(bytes(blob))

        reloaded = PointCache(cache.root)
        assert len(reloaded) == 1
        assert reloaded.corrupt == 1
        assert os.path.exists(victim + ".corrupt")

        # The missing point recomputes deterministically and re-stores.
        healed = run_sweep(_points(tiny_params), cache=reloaded, policy=FAST)
        assert [dataclasses.asdict(r) for r in healed] == [
            dataclasses.asdict(r) for r in baseline
        ]
        assert (reloaded.hits, reloaded.stores) == (1, 1)
        assert len(PointCache(cache.root)) == 2

    def test_zero_byte_entry_is_a_miss(self, tiny_params, tmp_path):
        cache, _baseline, names = self._seed_cache(tmp_path, tiny_params)
        open(os.path.join(cache.dir, names[0]), "wb").close()
        reloaded = PointCache(cache.root)
        assert len(reloaded) == 1
        assert reloaded.corrupt == 1

    def test_writes_leave_no_temp_droppings(self, tiny_params, tmp_path):
        cache, _baseline, _names = self._seed_cache(tmp_path, tiny_params)
        leftovers = [n for n in os.listdir(cache.dir) if n.startswith(".tmp-")]
        assert leftovers == []

    def test_unwritable_cache_downgrades_to_memory_only(
        self, tiny_params, tmp_path
    ):
        fault_plan.install(FaultPlan([FaultSpec("pointcache.save", count=1)]))
        cache = PointCache(str(tmp_path / "pc"))
        results = run_sweep(_points(tiny_params), cache=cache, policy=FAST)
        assert all(isinstance(r, CostReport) for r in results)
        assert cache.persistent is False
        assert cache.downgrades == 1
        assert len(cache) == 2  # memory still answers within the run
        assert _last_faults()["downgrades"] >= 1


class TestStoreDegradation:
    def test_snapshot_store_fault_degrades_persistence_not_the_run(
        self, tiny_params, tmp_path
    ):
        from repro.experiments.runner import DatabaseCache

        fault_plan.install(FaultPlan([FaultSpec("snapshot.save", count=1)]))
        cache = DatabaseCache(store=SnapshotStore(str(tmp_path / "db")))
        first = cache.get(tiny_params)
        assert first is not None
        assert cache.store is None  # persistence dropped...
        assert cache.downgrades == 1
        assert cache.snapshot_mode  # ...but snapshot mode survives:
        second = cache.get(tiny_params)
        assert second is not first
        assert (cache.builds, cache.attaches) == (1, 2)


class TestInterrupt:
    def test_ctrl_c_raises_sweep_interrupted_and_keeps_checkpoints(
        self, tiny_params, tmp_path, monkeypatch
    ):
        real = pool.execute_point
        calls = []

        def interrupt_second(point, db_cache=None):
            calls.append(point)
            if len(calls) == 2:
                raise KeyboardInterrupt
            return real(point, db_cache)

        monkeypatch.setattr(pool, "execute_point", interrupt_second)
        cache = PointCache(str(tmp_path / "pc"))
        points = _points(tiny_params, n=3)
        with pytest.raises(SweepInterrupted) as excinfo:
            run_sweep(points, cache=cache, policy=FAST)
        assert (excinfo.value.completed, excinfo.value.total) == (1, 3)

        # Rerun resumes: the completed point comes from the checkpoint.
        monkeypatch.setattr(pool, "execute_point", real)
        resumed = run_sweep(points, cache=cache, policy=FAST)
        assert all(isinstance(r, CostReport) for r in resumed)
        assert cache.hits == 1
        assert pool.SWEEP_LOG[-1]["cache_hits"] == 1


class TestPoolRecovery:
    def test_worker_crashes_restart_the_pool_and_results_match_serial(
        self, tiny_params
    ):
        # Every worker finishes one task, then dies on its second; the
        # parent must rebuild the pool until the sweep completes.
        serial = run_sweep(_points(tiny_params, n=4), policy=FAST)
        fault_plan.install(
            FaultPlan([FaultSpec("worker.crash", rate=1.0, count=1, after=1)])
        )
        parallel = run_sweep(_points(tiny_params, n=4), jobs=2, policy=FAST)
        assert [dataclasses.asdict(r) for r in parallel] == [
            dataclasses.asdict(r) for r in serial
        ]
        assert _last_faults()["pool_restarts"] >= 1
        assert _last_faults()["quarantined"] == []

    def test_hung_worker_is_detected_charged_and_redispatched(self, tiny_params):
        # 3 tasks over 2 workers: whichever worker draws a second task
        # hangs on it (after=1); the parent watchdog times it out, tears
        # the pool down, and a fresh worker completes the point.
        fault_plan.install(
            FaultPlan(
                [FaultSpec("worker.hang", rate=1.0, count=1, after=1)],
                hang_seconds=5.0,
            )
        )
        results = run_sweep(
            _points(tiny_params, n=3),
            jobs=2,
            policy=RetryPolicy(
                max_retries=2, backoff_seconds=0.001, point_timeout=0.4
            ),
        )
        assert all(isinstance(r, CostReport) for r in results)
        faults = _last_faults()
        assert faults["timeouts"] >= 1
        assert faults["pool_restarts"] >= 1
        assert faults["quarantined"] == []
