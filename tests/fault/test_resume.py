"""Crash safety, end to end: SIGKILL a real sweep process, then resume it.

These run the actual CLI in subprocesses — the kill phase must die with
SIGKILL (exit 137) exactly as a crashed production run would, and the
resume phase must answer the killed run's completed points from the
checkpoint and match a fresh fault-free computation bit for bit.
"""

import os
import subprocess
import sys

SCALE = "0.02"
KILL_AFTER = "2"


def _chaos(tmp_path, *argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    return subprocess.run(
        [sys.executable, "-m", "repro", "chaos", "--scale", SCALE,
         "--out", str(tmp_path), *argv],
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        env=env,
        capture_output=True,
        text=True,
        timeout=240,
    )


def test_sigkilled_sweep_resumes_bit_identically(tmp_path):
    killed = _chaos(
        tmp_path, "--phase", "kill", "--kill-after", KILL_AFTER
    )
    # SIGKILL self-inflicted at a point boundary: -9 from the wait
    # status, or 137 if a shell-style wrapper reaped it.
    assert killed.returncode in (-9, 137), killed.stdout + killed.stderr

    # The checkpointed points must survive on disk before the resume.
    cache_dir = tmp_path / "chaos" / ".pointcache"
    entries = [
        name
        for sub in os.listdir(cache_dir)
        for name in os.listdir(cache_dir / sub)
        if name.endswith(".json")
    ]
    assert len(entries) == int(KILL_AFTER)

    resumed = _chaos(tmp_path, "--phase", "resume")
    assert resumed.returncode == 0, resumed.stdout + resumed.stderr
    assert "resumed from checkpoint" in resumed.stdout
    assert "bit-identical" in resumed.stdout

    # A second resume is an error: the marker was consumed.
    again = _chaos(tmp_path, "--phase", "resume")
    assert again.returncode == 2
