"""The chaos harness: faulted sweeps must be bit-identical to clean ones."""

import json
import os

import pytest

from repro.fault import plan as fault_plan
from repro.fault.chaos import run_chaos


@pytest.fixture(autouse=True)
def no_active_plan():
    fault_plan.clear()
    yield
    fault_plan.clear()


def test_chaos_all_passes_and_writes_the_summary(tmp_path):
    assert run_chaos(scale=0.02, fault_seed=0, out=str(tmp_path), retrieves=3) == 0

    with open(tmp_path / "chaos" / "CHAOS.json") as handle:
        summary = json.load(handle)
    assert set(summary) == {"reference", "cold", "warm"}
    digests = {summary[name]["digest"] for name in summary}
    assert len(digests) == 1
    # The check must have tested something: both faulted passes saw
    # injections or recovery events, and recovered all of them.
    for name in ("cold", "warm"):
        faults = summary[name]["faults"]
        activity = sum(faults["injections"].values()) + faults["retries"] + \
            faults["cache_corrupt"] + faults["downgrades"]
        assert activity > 0
        assert summary[name]["quarantined"] == []

    # Injection is globally off again after the run.
    assert fault_plan.active() is None


def test_chaos_honours_a_custom_fault_schedule(tmp_path):
    assert (
        run_chaos(
            scale=0.02,
            fault_seed=3,
            out=str(tmp_path),
            faults="point.poison=1x2,disk.read=1x1@100",
            retrieves=3,
        )
        == 0
    )
    with open(tmp_path / "chaos" / "CHAOS.json") as handle:
        summary = json.load(handle)
    assert summary["cold"]["faults"]["injections"]["point.poison"] == 2


def test_kill_phase_rejects_an_out_of_range_boundary(tmp_path):
    assert run_chaos(scale=0.02, out=str(tmp_path), phase="kill", kill_after=99) == 2


def test_resume_phase_without_a_marker_is_an_error(tmp_path):
    assert run_chaos(scale=0.02, out=str(tmp_path), phase="resume") == 2
    assert not os.path.exists(tmp_path / "chaos" / "CHAOS.json")
