"""Shared fixtures: small catalogs, parameter points and built databases."""

from __future__ import annotations

import pytest

from repro.storage.catalog import Catalog
from repro.storage.record import CharField, IntField, Schema
from repro.workload.generator import build_database
from repro.workload.params import WorkloadParams


@pytest.fixture
def catalog() -> Catalog:
    """A catalog with a modest buffer pool."""
    return Catalog(buffer_pages=16, page_size=2048)


@pytest.fixture
def simple_schema() -> Schema:
    """(key, value, tag) — a generic three-field schema for storage tests."""
    return Schema([IntField("key"), IntField("value"), CharField("tag", 32)])


@pytest.fixture
def tiny_params() -> WorkloadParams:
    """A fast parameter point: 200 parents, ShareFactor 5."""
    return WorkloadParams(
        num_parents=200,
        use_factor=5,
        overlap_factor=1,
        num_top=10,
        num_queries=10,
        size_cache=20,
        buffer_pages=12,
        seed=7,
    )


@pytest.fixture
def tiny_db(tiny_params):
    """A tiny database with both clustering and caching available."""
    return build_database(tiny_params, clustering=True, cache=True)


@pytest.fixture
def tiny_db_plain(tiny_params):
    """A tiny database with neither clustering nor caching."""
    return build_database(tiny_params)
