"""Shared fixtures: small catalogs, parameter points and built databases.

Also the single place Hypothesis gets configured: every tier from
``repro.oracle.profiles`` is registered against the committed failure
corpus in ``tests/stateful/corpus/`` and one is loaded from the
``HYPOTHESIS_PROFILE`` environment variable (default ``quick``, the
tier-1 CI budget).  Property tests and the stateful suites therefore
share example budgets and replay each other's shrunk counterexamples.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import settings as hyp_settings
from hypothesis.database import DirectoryBasedExampleDatabase

from repro.oracle.profiles import register_profiles
from repro.storage.catalog import Catalog
from repro.storage.record import CharField, IntField, Schema
from repro.workload.generator import build_database
from repro.workload.params import WorkloadParams

_CORPUS = os.path.join(os.path.dirname(__file__), "stateful", "corpus")
register_profiles(database=DirectoryBasedExampleDatabase(_CORPUS))
hyp_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "quick"))


@pytest.fixture
def catalog() -> Catalog:
    """A catalog with a modest buffer pool."""
    return Catalog(buffer_pages=16, page_size=2048)


@pytest.fixture
def simple_schema() -> Schema:
    """(key, value, tag) — a generic three-field schema for storage tests."""
    return Schema([IntField("key"), IntField("value"), CharField("tag", 32)])


@pytest.fixture
def tiny_params() -> WorkloadParams:
    """A fast parameter point: 200 parents, ShareFactor 5."""
    return WorkloadParams(
        num_parents=200,
        use_factor=5,
        overlap_factor=1,
        num_top=10,
        num_queries=10,
        size_cache=20,
        buffer_pages=12,
        seed=7,
    )


@pytest.fixture
def tiny_db(tiny_params):
    """A tiny database with both clustering and caching available."""
    return build_database(tiny_params, clustering=True, cache=True)


@pytest.fixture
def tiny_db_plain(tiny_params):
    """A tiny database with neither clustering nor caching."""
    return build_database(tiny_params)
