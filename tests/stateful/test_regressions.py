"""Shrunk counterexamples from fuzz campaigns, frozen as plain tests.

Each test replays an exact operation sequence Hypothesis shrank from a
failing campaign, so the bug stays fixed even if the example corpus is
pruned.  Keep these independent of hypothesis: no strategies, no
database — just the sequence.
"""

from __future__ import annotations

from repro.storage.catalog import Catalog
from repro.storage.record import IntField, Schema

PAGE_SIZE = 128  # the stateful machines' tiny geometry


def _tree(unique: bool = True):
    catalog = Catalog(buffer_pages=8, page_size=PAGE_SIZE)
    schema = Schema([IntField("key"), IntField("value")])
    return catalog.create_btree("t", schema, "key", unique=unique)


def test_btree_stale_low_fence_separator_order():
    """Shrunk by ``repro fuzz --machine btree --seed 1`` (deep profile).

    Bulk-loading one full leaf and then inserting keys below the bulk
    minimum routed them into child 0 without lowering the parent's
    entry-0 separator.  The next split of that leaf emitted separator 4
    — equal to the stale fence — breaking strict separator order; one
    more split could place a *smaller* separator before the stale
    entry, making resident keys unreachable.
    """
    tree = _tree()
    tree.bulk_load([(k, k * 3) for k in sorted({4, 6, 7, 9, 10, 11, 12, 13})])
    for key in (5, 0, 1, 2, 3, 8):
        tree.insert((key, 0))
        tree.check_invariants()
    present = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}
    assert [record[0] for record in tree.scan()] == sorted(present)
    for key in present:
        assert tree.lookup(key), "key %r unreachable after splits" % key


def test_btree_low_fence_maintained_through_repeated_splits():
    """The same stale-fence defect, driven until the leftmost leaf
    splits repeatedly (the variant that loses keys, not just ordering):
    descend-time fence maintenance must keep every key reachable."""
    tree = _tree()
    tree.bulk_load([(k, k * 3) for k in range(100, 140, 5)])
    for key in range(99, -1, -1):  # descending inserts, all below the fence
        tree.insert((key, key))
        tree.check_invariants()
    for key in range(100):
        assert tree.lookup(key) == [(key, key)]


def test_btree_root_split_after_leftmost_leaf_emptied():
    """Deletes may empty the leftmost leaf (lazy deletion keeps the
    page).  A later root split used to take the subtree's lower bound
    by descending to that empty leaf, yielding a ``None`` separator
    that poisons every subsequent ``bisect`` comparison.  Internal
    nodes now answer with their first separator instead."""
    tree = _tree()
    tree.bulk_load([(k, k) for k in range(0, 64, 2)])  # several leaves
    assert tree.height >= 2
    # Empty the leftmost leaf: delete the smallest keys.
    for key in range(0, 16, 2):
        assert tree.delete_if_present(key)
        tree.check_invariants()
    # Grow until the root splits again (height increases).
    height = tree.height
    key = 200
    while tree.height == height:
        tree.insert((key, key))
        tree.check_invariants()
        key += 1
    survivors = sorted(set(range(16, 64, 2)) | set(range(200, key)))
    assert [record[0] for record in tree.scan()] == survivors
