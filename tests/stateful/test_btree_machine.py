"""B-tree differential fuzz: random inserts/deletes/updates/lookups vs
a dict-of-lists model AND an in-memory sqlite3 mirror, with the tree's
structural invariants (separator order, fences, leaf chain, occupancy
accounting) checked after every step."""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import run_state_machine_as_test

from repro.oracle.machines import BTreeMachine


def test_btree_state_machine():
    run_state_machine_as_test(BTreeMachine, settings=settings())
