"""Static-hash differential fuzz: insert/upsert/delete/truncate with
overflow-chain integrity (acyclic chains, correct bucket placement,
free-list/chain partition of the file) checked after every step."""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import run_state_machine_as_test

from repro.oracle.machines import HashMachine


def test_hash_state_machine():
    run_state_machine_as_test(HashMachine, settings=settings())
