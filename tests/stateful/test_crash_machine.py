"""Fault-interleaved crash-consistency fuzz.

Rules may arm a seeded FaultPlan over the disk sites (read errors, torn
reads, write errors) mid-sequence; any operation that dies with
FaultInjected is treated as a crash, the working clone is discarded,
and a fresh clone is re-attached from the last durable snapshot — which
must then equal the durable reference model exactly.  Commits travel
through the checksummed SnapshotStore, and a reload rule corrupts the
stored bytes to drive the quarantine path."""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import run_state_machine_as_test

from repro.oracle.machines import CrashConsistencyMachine


def test_crash_consistency_state_machine():
    run_state_machine_as_test(CrashConsistencyMachine, settings=settings())
