"""Heap-file differential fuzz: insert/insert_many/update/fetch/truncate
against an insertion-order model keyed by the engine's own rids, with
tail-page and record-count accounting checked after every step."""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import run_state_machine_as_test

from repro.oracle.machines import HeapMachine


def test_heap_state_machine():
    run_state_machine_as_test(HeapMachine, settings=settings())
