"""Fixtures for the stateful (state-machine) suites.

The machines in :mod:`repro.oracle.machines` arm process-global fault
plans; a test that dies mid-rule must never leak an armed plan into the
next test, so clearing is autouse on both sides of every test here.
"""

from __future__ import annotations

import pytest

from repro.fault import plan as _fault


@pytest.fixture(autouse=True)
def no_leaked_fault_plan():
    _fault.clear()
    yield
    _fault.clear()
