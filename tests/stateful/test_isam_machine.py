"""ISAM differential fuzz: a built directory plus random overflow
inserts and probes, with directory ordering, per-page sortedness and
overflow-chain coverage checked after every step."""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import run_state_machine_as_test

from repro.oracle.machines import IsamMachine


def test_isam_state_machine():
    run_state_machine_as_test(IsamMachine, settings=settings())
