"""Snapshot/clone differential fuzz: a frozen template plus up to four
live clones mutated independently; checks COW isolation (no clone ever
sees another's writes, the template never changes, direct template
mutation raises FrozenPageError) after every step."""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import run_state_machine_as_test

from repro.oracle.machines import SnapshotMachine


def test_snapshot_state_machine():
    run_state_machine_as_test(SnapshotMachine, settings=settings())
