"""A3 ablation benchmark: outside vs inside caching ([JHIN88]'s claim)."""

from benchmarks.conftest import emit
from repro.experiments import ablations


def test_ablation_inside_vs_outside(benchmark, results_dir, bench_scale):
    result = benchmark.pedantic(
        lambda: ablations.run_inside_outside(scale=bench_scale),
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "ablation_inside_outside", result.table())
    benchmark.extra_info["rows"] = result.rows

    for use_factor, outside, inside in result.rows:
        if use_factor >= 5:
            assert outside < inside, (
                "outside caching must dominate once units are shared"
            )
