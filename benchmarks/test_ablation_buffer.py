"""A2 ablation benchmark: buffer-pool size does not flip the conclusions."""

from benchmarks.conftest import emit
from repro.experiments import ablations


def test_ablation_buffer_pool(benchmark, results_dir, bench_scale):
    result = benchmark.pedantic(
        lambda: ablations.run_buffer_size(scale=bench_scale),
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "ablation_buffer", result.table())
    benchmark.extra_info["rows"] = result.rows

    dfs = result.column("DFS")
    bfs = result.column("BFS")
    assert dfs[-1] < dfs[0], "more buffer must help DFS"
    for d, b in zip(dfs, bfs):
        assert b < d, "BFS stays the winner at this NumTop at every size"
