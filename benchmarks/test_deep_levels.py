"""Claim-check C1 benchmark: multi-level exploration (Sections 3 & 5.1).

Regenerates the depth sweep and asserts the paper's two statements: DFS
deteriorates with levels, and BFSNODUP's benefit over BFS grows with
depth yet stays "marginal at best".
"""

from benchmarks.conftest import emit
from repro.experiments import deep


def test_deep_level_exploration(benchmark, results_dir, bench_scale):
    result = benchmark.pedantic(
        lambda: deep.run(scale=bench_scale, span=12), rounds=1, iterations=1
    )
    emit(results_dir, "deep", result.table())
    benchmark.extra_info["rows"] = result.rows

    dfs = result.column("DFS")
    bfs = result.column("BFS")
    gains = result.column("nodup_gain")
    assert dfs == sorted(dfs), "DFS cost must grow with depth"
    assert dfs[-1] > 2 * bfs[-1], "iteration must win deep exploration"
    assert gains[-1] >= gains[0], "duplicate elimination gains with depth"
    assert gains[-1] < 0.2, "...but remains marginal, as the paper found"
