"""Figure 7 benchmark: OverlapFactor's effect on clustering.

Regenerates the Cost(DFSCLUST)/Cost(BFS) ratio curves for
(Overlap=1, Use=5) and (Overlap=5, Use=1) and asserts that overlap
degrades clustering and moves the break-even NumTop down.
"""

from benchmarks.conftest import emit
from repro.experiments import fig7


def test_fig7_overlap_factor(benchmark, results_dir, bench_scale):
    result = benchmark.pedantic(
        lambda: fig7.run(scale=bench_scale, num_retrieves=6),
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "fig7", result.table())
    benchmark.extra_info["rows"] = result.rows

    above = sum(1 for row in result.rows if row[2] > row[1])
    assert above >= len(result.rows) - 1, "overlap=5 curve must sit above"

    def break_even(col):
        for row in result.rows:
            if row[col] > 1.0:
                return row[0]
        return None

    high = break_even(2)
    low = break_even(1)
    assert high is not None
    if low is not None:
        assert high <= low, "higher overlap must lower the break-even NumTop"
