"""A1 ablation benchmark: DFSCACHE cost vs SizeCache."""

from benchmarks.conftest import emit
from repro.experiments import ablations


def test_ablation_cache_size(benchmark, results_dir, bench_scale):
    result = benchmark.pedantic(
        lambda: ablations.run_cache_size(scale=bench_scale),
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "ablation_cache_size", result.table())
    benchmark.extra_info["rows"] = result.rows

    costs = result.column("DFSCACHE")
    hit_rates = result.column("hit_rate")
    assert costs[-1] < costs[0], "a larger cache must cut query cost"
    assert hit_rates[-1] > hit_rates[0]
    assert hit_rates == sorted(hit_rates), "hit rate grows with SizeCache"
