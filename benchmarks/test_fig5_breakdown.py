"""Figure 5 benchmark: ParCost/ChildCost vs ShareFactor for DFSCLUST & BFS.

Regenerates both panels of Figure 5 at NumTop = 2% of |ParentRel| in the
paper's Pr(UPDATE) -> 1 limit and asserts the four trends plus the
existence of the BFS/DFSCLUST crossover.
"""

from benchmarks.conftest import emit
from repro.experiments import fig5


def test_fig5_cost_breakdown(benchmark, results_dir, bench_scale):
    result = benchmark.pedantic(
        lambda: fig5.run(scale=bench_scale, num_retrieves=6),
        rounds=1,
        iterations=1,
    )
    crossover = fig5.crossover_share_factor(result)
    emit(
        results_dir,
        "fig5",
        result.table() + "\nBFS overtakes DFSCLUST at ShareFactor: %r" % crossover,
    )
    benchmark.extra_info["crossover_share_factor"] = crossover

    clust_par = result.column("clust_ParCost")
    clust_child = result.column("clust_ChildCost")
    bfs_par = result.column("bfs_ParCost")
    bfs_child = result.column("bfs_ChildCost")

    assert clust_par[0] == max(clust_par)  # scan dearest at perfect clustering
    assert clust_child[0] == 0  # no chases at ShareFactor 1
    assert max(bfs_par) - min(bfs_par) <= 0.3 * max(bfs_par)  # flat
    assert bfs_child[0] > 2 * bfs_child[-1]  # falls with ShareFactor
    assert crossover is not None  # BFS eventually wins
    assert result.rows[0][3] < result.rows[0][6]  # DFSCLUST wins at SF=1
