"""A4 ablation benchmark: LRU vs clock replacement.

The paper's conclusions are about access-pattern shape, not buffer-policy
minutiae; swapping LRU for second-chance clock must keep every strategy
ordering intact.
"""

from benchmarks.conftest import emit
from repro.experiments import ablations


def test_ablation_buffer_policy(benchmark, results_dir, bench_scale):
    result = benchmark.pedantic(
        lambda: ablations.run_buffer_policy(scale=bench_scale),
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "ablation_buffer_policy", result.table())
    benchmark.extra_info["rows"] = result.rows

    by_policy = {row[0]: row[1:] for row in result.rows}
    for dfs, bfs, clust in by_policy.values():
        assert bfs < dfs, "BFS must beat DFS at this NumTop under any policy"
    # Costs under the two policies agree within a modest band.
    for lru_cost, clock_cost in zip(by_policy["lru"], by_policy["clock"]):
        assert abs(lru_cost - clock_cost) <= 0.5 * max(lru_cost, clock_cost)
