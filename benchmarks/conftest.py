"""Benchmark configuration.

Each benchmark regenerates one of the paper's figures/tables at a reduced
scale (documented in EXPERIMENTS.md), prints the series, asserts the
headline shape, and writes the table to ``results/``.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")

#: Default scale for benchmark sweeps (paper scale = 1.0).  Override with
#: the REPRO_BENCH_SCALE environment variable (e.g. REPRO_BENCH_SCALE=1.0
#: for a full-scale overnight run).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.15"))


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


def emit(results_dir: str, name: str, text: str) -> None:
    """Print a result table and persist it under results/."""
    print()
    print(text)
    path = os.path.join(results_dir, "%s.txt" % name)
    with open(path, "w") as handle:
        handle.write(text + "\n")
