"""Section 6.2 benchmark: subobjects drawn from several relations.

Regenerates the NumChildRel sweep and asserts the paper's finding: DFS
(and hence caching) strategies are nearly flat; BFS degrades only as
NumChildRel approaches NumTop.
"""

from benchmarks.conftest import emit
from repro.experiments import sec62


def test_sec62_num_child_rels(benchmark, results_dir, bench_scale):
    scale = max(bench_scale, 0.2)  # tiny scales collapse 20-way splits
    result = benchmark.pedantic(
        lambda: sec62.run(scale=scale), rounds=1, iterations=1
    )
    spreads = {
        name: round(sec62.max_relative_spread(result, name), 3)
        for name in sec62.STRATEGIES
    }
    emit(
        results_dir,
        "sec62",
        result.table() + "\nrelative spreads: %r" % (spreads,),
    )
    benchmark.extra_info["spreads"] = spreads

    assert spreads["DFS"] < 0.35
    assert spreads["DFSCACHE"] < 0.35
    bfs = result.column("BFS")
    assert bfs[-1] == max(bfs) and bfs[-1] > bfs[0]
