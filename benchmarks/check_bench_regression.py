#!/usr/bin/env python
"""Benchmark-regression gate: fail CI when the engine gets slower.

Compares a freshly produced ``BENCH_sweeps.json`` (the cold-run telemetry
`python -m repro report` writes) against a committed baseline and exits
non-zero when the cold run slowed down by more than the tolerance
(default 25%).  The per-experiment breakdown is printed either way, so a
passing run still shows where time moved.

Usage::

    python benchmarks/check_bench_regression.py BENCH_sweeps.json \
        benchmarks/BENCH_sweeps_baseline.json [--tolerance 1.25]

    python benchmarks/check_bench_regression.py results/BENCH_micro.json \
        benchmarks/BENCH_micro_baseline.json --micro [--tolerance 1.30]

Sweep mode gates only the total: per-experiment seconds at CI scale are
noisy (a few seconds each), while the total amortises scheduler jitter
over hundreds of points.  ``--micro`` mode gates each microbenchmark's
``p95_ns_per_op`` (from ``repro bench``) individually — per-op
nanoseconds over thousands of iterations are stable enough, and the p95
catches a hot path that turned erratic even when its best pass stays
fast.  Both baselines were recorded on a GitHub-runner-class core;
re-record (``--update``) whenever a deliberate engine change shifts the
cost profile.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys


def load(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


#: Absolute p95 growth (ns/op) below which a ratio breach is clock
#: quantization, not a regression.  A 20M-records/s scan sits at ~8
#: ns/op, where a couple of timer ticks already doubles the ratio.
MICRO_NOISE_FLOOR_NS = 50.0


def check_micro(current: dict, baseline: dict, tolerance: float) -> int:
    """Gate each microbenchmark's p95 ns/op against the baseline."""
    base_benches = baseline.get("benchmarks", {})
    failures = []
    print(
        "%-18s %12s %12s %8s" % ("benchmark", "baseline", "current", "ratio")
    )
    for name, result in sorted(current.get("benchmarks", {}).items()):
        p95 = result.get("p95_ns_per_op")
        base_p95 = base_benches.get(name, {}).get("p95_ns_per_op")
        if p95 is None or result.get("skipped"):
            print("%-18s %12s %12s %8s" % (name, "-", "-", "skipped"))
            continue
        if not base_p95:
            print("%-18s %12s %9.0f ns %8s" % (name, "-", p95, "new"))
            continue
        ratio = p95 / base_p95
        breached = ratio > tolerance
        if breached and p95 - base_p95 < MICRO_NOISE_FLOOR_NS:
            marker = " (noise floor)"
            breached = False
        else:
            marker = " FAIL" if breached else ""
        print(
            "%-18s %9.0f ns %9.0f ns %7.2fx%s"
            % (name, base_p95, p95, ratio, marker)
        )
        if breached:
            failures.append(name)
    if failures:
        print(
            "FAIL: p95 ns/op slowed down by more than %d%%: %s"
            % (round((tolerance - 1) * 100), ", ".join(failures))
        )
        return 1
    print("OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="BENCH_sweeps.json from this run")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=1.25,
        help="fail when current total exceeds baseline * TOLERANCE "
        "(default 1.25 = 25%% slowdown)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="overwrite the baseline with the current run and exit 0",
    )
    parser.add_argument(
        "--micro",
        action="store_true",
        help="compare BENCH_micro.json files: gate each benchmark's "
        "p95_ns_per_op instead of the sweep total",
    )
    args = parser.parse_args()

    current = load(args.current)
    if args.update:
        shutil.copyfile(args.current, args.baseline)
        if args.micro:
            print(
                "micro baseline updated: %d benchmark(s)"
                % len(current.get("benchmarks", {}))
            )
        else:
            print("baseline updated: total %.1fs" % current["total_seconds"])
        return 0
    baseline = load(args.baseline)

    if args.micro:
        return check_micro(current, baseline, args.tolerance)

    if current.get("scale") != baseline.get("scale"):
        print(
            "scale mismatch: current %s vs baseline %s — not comparable"
            % (current.get("scale"), baseline.get("scale"))
        )
        return 2

    base_by_name = {
        row["name"]: row for row in baseline.get("experiments", [])
    }
    print("%-28s %9s %9s %8s" % ("experiment", "baseline", "current", "ratio"))
    for row in current.get("experiments", []):
        name = row.get("name", "?")
        base_row = base_by_name.get(name)
        if base_row is None or not base_row.get("seconds"):
            print("%-28s %9s %8.2fs %8s" % (name, "-", row["seconds"], "new"))
            continue
        ratio = row["seconds"] / base_row["seconds"]
        print(
            "%-28s %8.2fs %8.2fs %7.2fx"
            % (name, base_row["seconds"], row["seconds"], ratio)
        )

    total = current["total_seconds"]
    base_total = baseline["total_seconds"]
    ratio = total / base_total
    limit = args.tolerance
    print(
        "total: baseline %.1fs, current %.1fs, ratio %.2fx (limit %.2fx)"
        % (base_total, total, ratio, limit)
    )
    if ratio > limit:
        print(
            "FAIL: cold run slowed down by more than %d%%"
            % round((limit - 1) * 100)
        )
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
