"""Figure 3 benchmark: DFS vs BFS vs BFSNODUP over NumTop.

Regenerates the series of Figure 3 (average I/O per query against NumTop
at ShareFactor 5) and asserts its shape: BFS overtakes DFS around
NumTop ~ 50, BFSNODUP stays within a whisker of BFS.
"""

from benchmarks.conftest import emit
from repro.experiments import fig3


def test_fig3_dfs_bfs_bfsnodup(benchmark, results_dir, bench_scale):
    result = benchmark.pedantic(
        lambda: fig3.run(scale=bench_scale), rounds=1, iterations=1
    )
    emit(results_dir, "fig3", result.table())
    benchmark.extra_info["rows"] = result.rows

    crossover = fig3.crossover_num_top(result)
    assert crossover is not None and crossover <= 100
    final = result.rows[-1]
    assert final[1] > 3 * final[2], "DFS must lose badly at high NumTop"
    for row in result.rows:
        assert abs(row[3] - row[2]) <= max(4.0, 0.3 * row[2]), (
            "BFSNODUP should not be much better than BFS"
        )
