"""Section 5.3 benchmark: SMART on a mixed-NumTop workload.

Asserts the paper's claim: with a good query mix, SMART keeps caching
competitive — beating BFS while Pr(UPDATE) is not too high — and never
collapses to DFSCACHE's high-NumTop pathology.
"""

from benchmarks.conftest import emit
from repro.experiments import smart


def test_smart_mixed_workload(benchmark, results_dir, bench_scale):
    result = benchmark.pedantic(
        lambda: smart.run(scale=bench_scale), rounds=1, iterations=1
    )
    emit(results_dir, "smart", result.table())
    benchmark.extra_info["rows"] = result.rows

    no_updates = result.rows[0]
    assert no_updates[0] == 0.0
    bfs, dfscache, smart_cost = no_updates[1], no_updates[2], no_updates[3]
    assert smart_cost < bfs, "SMART must beat BFS on the mix at Pr(UPDATE)=0"
    assert smart_cost <= dfscache * 1.05, "SMART must not lose to DFSCACHE"
    smart_costs = result.column("SMART")
    assert smart_costs[-1] > smart_costs[0], "updates must hurt SMART"
