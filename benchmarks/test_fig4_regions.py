"""Figure 4 benchmark: best-strategy regions over the 3-D parameter cuboid.

Regenerates the (ShareFactor, NumTop, Pr(UPDATE)) grid with the three
contending strategies and asserts the paper's region structure.
"""

from benchmarks.conftest import emit
from repro.experiments import fig4


def test_fig4_best_strategy_regions(benchmark, results_dir, bench_scale):
    result = benchmark.pedantic(
        lambda: fig4.run(scale=bench_scale, coarse=True),
        rounds=1,
        iterations=1,
    )
    counts = fig4.region_counts(result)
    emit(
        results_dir,
        "fig4",
        result.table() + "\nregion sizes: %r" % (counts,),
    )
    benchmark.extra_info["regions"] = counts

    # Clustering owns the ShareFactor=1 plane.
    for row in fig4.winner_at(result, share_factor=1):
        assert row[-1] == "DFSCLUST", row
    # BFS owns high NumTop at high sharing.
    num_tops = sorted({row[1] for row in result.rows})
    for row in fig4.winner_at(result, share_factor=25, num_top=num_tops[-1]):
        assert row[-1] == "BFS", row
    # Caching never wins at a high update rate.
    for row in result.rows:
        if row[-1] == "DFSCACHE":
            assert row[2] <= 0.5, row
    assert counts["BFS"] > 0 and counts["DFSCLUST"] > 0
