"""Claim-check C2 benchmark: comparing points across the matrix columns.

The cross-column comparison the paper defers to future work (Section
2.4), run over one logical database that carries both the procedural and
the OID primary representations.
"""

from benchmarks.conftest import emit
from repro.experiments import matrix


def test_matrix_cross_column(benchmark, results_dir, bench_scale):
    result = benchmark.pedantic(
        lambda: matrix.run(scale=max(bench_scale, 0.2)), rounds=1, iterations=1
    )
    emit(results_dir, "matrix", result.table())
    benchmark.extra_info["rows"] = result.rows

    read_only = result.rows[0]
    assert read_only[0] == 0.0
    pr0 = dict(zip(result.headers[1:], read_only[1:]))
    # Within the procedural column: more caching, less I/O.
    assert pr0["PROC-CACHE-VALUES"] < pr0["PROC-CACHE-OIDS"] < pr0["PROC-EXEC"]
    # Across columns, uncached: knowing identities beats deriving them.
    assert pr0["BFS"] < pr0["PROC-EXEC"]
    # Updates erode the cached points but not PROC-EXEC.
    updated = dict(zip(result.headers[1:], result.rows[-1][1:]))
    exec_delta = updated["PROC-EXEC"] - pr0["PROC-EXEC"]
    values_delta = updated["PROC-CACHE-VALUES"] - pr0["PROC-CACHE-VALUES"]
    assert exec_delta < values_delta
