"""Claim-check C3 benchmark: cost-based per-query plan selection.

Validates the optimizer step of Section 4: OPT must track the cheaper of
DFS and BFS across the whole NumTop range with negligible regret.
"""

from benchmarks.conftest import emit
from repro.experiments import opt


def test_opt_tracks_best_plan(benchmark, results_dir, bench_scale):
    result = benchmark.pedantic(
        lambda: opt.run(scale=bench_scale), rounds=1, iterations=1
    )
    regret = opt.max_regret(result)
    emit(results_dir, "opt", result.table() + "\nmax regret: %.3f" % regret)
    benchmark.extra_info["max_regret"] = regret

    assert regret <= 0.25, "OPT must stay close to min(DFS, BFS)"
    first, last = result.rows[0], result.rows[-1]
    assert first[3] <= first[2], "OPT must not pay BFS's temporary at NumTop=1"
    assert last[3] <= 0.5 * last[1], "OPT must escape DFS at large NumTop"
